package f16

import "math"

// NormalizedCodec is method 3 of paper Fig. 5d, the variant adopted for most
// velocity and stress arrays: using the [Vmin, Vmax] statistics recorded by
// the coarse preprocessing run, values are affinely mapped to V' in [1,2).
// In that interval the IEEE 754 exponent is identically zero, so the
// compressed 16-bit value is simply the top 16 mantissa bits of V' — both
// compression and decompression reduce to one multiply-add and a bit shift,
// which is why this method is the cheapest on the CPEs.
//
// (The paper's figure labels the payload "sign + frac(15b)"; because the
// normalization absorbs the sign into the affine map we spend all 16 bits on
// mantissa, which matches the scheme's intent with slightly better
// precision.)
type NormalizedCodec struct {
	vmin, vmax float32
	scale      float32 // 1/(vmax-vmin), 0 when the range is degenerate
	invScale   float32 // vmax-vmin
}

// NewNormalizedCodec builds a codec for the closed value range [vmin, vmax].
func NewNormalizedCodec(vmin, vmax float32) *NormalizedCodec {
	c := &NormalizedCodec{vmin: vmin, vmax: vmax}
	if vmax > vmin {
		c.scale = 1 / (vmax - vmin)
		c.invScale = vmax - vmin
	}
	return c
}

// NewNormalizedCodecFromSample scans sample for its min/max and builds the
// codec. This is the "collect statistics from coarse grid" step of Fig 5a.
func NewNormalizedCodecFromSample(sample []float32) *NormalizedCodec {
	lo, hi := float32(math.MaxFloat32), float32(-math.MaxFloat32)
	for _, v := range sample {
		if math.IsNaN(float64(v)) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo > hi {
		lo, hi = 0, 0
	}
	return NewNormalizedCodec(lo, hi)
}

// Range returns the value range the codec covers.
func (c *NormalizedCodec) Range() (vmin, vmax float32) { return c.vmin, c.vmax }

// Encode compresses v to 16 bits; out-of-range values are clamped.
// The mantissa is rounded to nearest, not truncated: a truncating encoder
// would bias every stored value low by half a quantization step, and the
// decompress–compute–compress loop applies that bias once per kernel pass,
// accumulating a linear drift over thousands of steps.
func (c *NormalizedCodec) Encode(v float32) uint16 {
	if c.scale == 0 {
		return 0
	}
	vp := 1 + (v-c.vmin)*c.scale // in [1,2] up to clamping
	if vp < 1 {
		vp = 1
	} else if vp >= 2 {
		return 0xffff
	}
	// exponent of vp is 0; round its 23-bit mantissa to 16 bits
	code := (math.Float32bits(vp)&0x7fffff + 0x40) >> 7
	if code > 0xffff {
		code = 0xffff
	}
	return uint16(code)
}

// Decode expands a 16-bit code back to float32.
func (c *NormalizedCodec) Decode(h uint16) float32 {
	if c.scale == 0 {
		return c.vmin
	}
	vp := math.Float32frombits(0x3f800000 | uint32(h)<<7&0x7fffff)
	return (vp-1)*c.invScale + c.vmin
}

// MaxError returns the worst-case absolute reconstruction error for
// in-range inputs: half a quantization step of the 16-bit mantissa grid.
func (c *NormalizedCodec) MaxError() float32 {
	return c.invScale / (1 << 16)
}

// EncodeSlice encodes src into dst elementwise.
func (c *NormalizedCodec) EncodeSlice(dst []uint16, src []float32) {
	if c.scale == 0 {
		for i := range src {
			dst[i] = 0
		}
		return
	}
	vmin, scale := c.vmin, c.scale
	for i, v := range src {
		vp := 1 + (v-vmin)*scale
		if vp < 1 {
			vp = 1
		} else if vp >= 2 {
			dst[i] = 0xffff
			continue
		}
		code := (math.Float32bits(vp)&0x7fffff + 0x40) >> 7
		if code > 0xffff {
			code = 0xffff
		}
		dst[i] = uint16(code)
	}
}

// DecodeSlice decodes src into dst elementwise.
func (c *NormalizedCodec) DecodeSlice(dst []float32, src []uint16) {
	if c.scale == 0 {
		for i := range src {
			dst[i] = c.vmin
		}
		return
	}
	vmin, inv := c.vmin, c.invScale
	for i, h := range src {
		vp := math.Float32frombits(0x3f800000 | uint32(h)<<7&0x7fffff)
		dst[i] = (vp-1)*inv + vmin
	}
}
