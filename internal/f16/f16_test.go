package f16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHalfKnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h Half
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff}, // max finite half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
		{5.9604645e-8, 0x0001}, // smallest subnormal half
		{0.33325195, 0x3555},   // nearest half to 1/3
	}
	for _, c := range cases {
		if got := FromFloat32(c.f); got != c.h {
			t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.f, got, c.h)
		}
	}
}

func TestHalfDecodeKnownValues(t *testing.T) {
	cases := []struct {
		h Half
		f float32
	}{
		{0x3c00, 1},
		{0xc000, -2},
		{0x7bff, 65504},
		{0x0400, 6.103515625e-5}, // smallest normal half
		{0x0001, 5.9604645e-8},   // smallest subnormal
	}
	for _, c := range cases {
		if got := c.h.Float32(); got != c.f {
			t.Errorf("%#04x.Float32() = %v, want %v", c.h, got, c.f)
		}
	}
}

func TestHalfNaN(t *testing.T) {
	h := FromFloat32(float32(math.NaN()))
	if h&0x7c00 != 0x7c00 || h&0x3ff == 0 {
		t.Fatalf("NaN encoded as %#04x", h)
	}
	if !math.IsNaN(float64(h.Float32())) {
		t.Fatal("NaN round trip lost")
	}
}

func TestHalfOverflowToInf(t *testing.T) {
	if FromFloat32(70000) != 0x7c00 {
		t.Fatal("overflow must produce +Inf")
	}
	if FromFloat32(-70000) != 0xfc00 {
		t.Fatal("negative overflow must produce -Inf")
	}
}

func TestHalfUnderflowToZero(t *testing.T) {
	if h := FromFloat32(1e-10); h != 0 {
		t.Fatalf("underflow got %#04x", h)
	}
	if h := FromFloat32(-1e-10); h != 0x8000 {
		t.Fatalf("negative underflow got %#04x", h)
	}
}

func TestHalfRoundTripExactForHalfValues(t *testing.T) {
	// every finite half value must round-trip float32->half->float32 exactly
	for i := 0; i < 0x10000; i++ {
		h := Half(i)
		if h&0x7c00 == 0x7c00 && h&0x3ff != 0 {
			continue // NaN payloads need not round trip bit-exactly
		}
		f := h.Float32()
		if back := FromFloat32(f); back != h {
			t.Fatalf("half %#04x -> %v -> %#04x", h, f, back)
		}
	}
}

func TestHalfRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 10000; n++ {
		f := (rng.Float32()*2 - 1) * 100
		g := FromFloat32(f).Float32()
		relErr := math.Abs(float64(g-f)) / math.Max(math.Abs(float64(f)), 1e-4)
		if relErr > 1.0/1024 { // 10 mantissa bits => 2^-10 half-ulp rounding
			t.Fatalf("relative error %g too large for %v -> %v", relErr, f, g)
		}
	}
}

func TestQuickHalfMonotone(t *testing.T) {
	// encoding preserves <= ordering for positive values in half range
	fn := func(a, b float32) bool {
		a, b = float32(math.Abs(float64(a))), float32(math.Abs(float64(b)))
		if a > 60000 || b > 60000 || math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return FromFloat32(a) <= FromFloat32(b)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeSlice(t *testing.T) {
	src := []float32{1, -2, 0.25, 1000}
	enc := make([]uint16, len(src))
	dec := make([]float32, len(src))
	EncodeSlice(enc, src)
	DecodeSlice(dec, enc)
	for i := range src {
		if dec[i] != src[i] { // these are exactly representable
			t.Fatalf("slice round trip [%d]: %v != %v", i, dec[i], src[i])
		}
	}
}

func TestAdaptiveCodecExpBits(t *testing.T) {
	// narrow dynamic range => few exponent bits, many mantissa bits
	c := NewAdaptiveCodecRange(0, 1)
	if c.ExpBits() > 2 {
		t.Fatalf("narrow range used %d exponent bits", c.ExpBits())
	}
	if c.ExpBits()+c.ManBits() != 15 {
		t.Fatalf("bit budget %d+%d != 15", c.ExpBits(), c.ManBits())
	}
	// wide range => more exponent bits
	w := NewAdaptiveCodecRange(-120, 120)
	if w.ExpBits() != 8 {
		t.Fatalf("wide range used %d exponent bits, want 8", w.ExpBits())
	}
}

func TestAdaptiveBeatsHalfOnNarrowRange(t *testing.T) {
	// values in [0.5, 2): exponent in {-1, 0}; adaptive gets 13-14 mantissa
	// bits vs half's 10, so its max relative error must be smaller.
	rng := rand.New(rand.NewSource(2))
	sample := make([]float32, 1000)
	for i := range sample {
		sample[i] = 0.5 + 1.49*rng.Float32()
	}
	c := NewAdaptiveCodec(sample)
	var worstA, worstH float64
	for _, v := range sample {
		a := math.Abs(float64(c.Decode(c.Encode(v)) - v))
		h := math.Abs(float64(FromFloat32(v).Float32() - v))
		if a > worstA {
			worstA = a
		}
		if h > worstH {
			worstH = h
		}
	}
	if worstA >= worstH {
		t.Fatalf("adaptive worst %g not better than half worst %g", worstA, worstH)
	}
}

func TestAdaptiveZeroAndClamp(t *testing.T) {
	c := NewAdaptiveCodecRange(-3, 3)
	if got := c.Decode(c.Encode(0)); got != 0 {
		t.Fatalf("zero round trip got %v", got)
	}
	if got := c.Decode(c.Encode(-0.0)); got != 0 {
		t.Fatalf("-0 round trip got %v", got)
	}
	// magnitude above range clamps, below flushes to zero
	big := c.Decode(c.Encode(1e20))
	if big <= 8 || big >= 16+1 {
		t.Fatalf("overflow clamp gave %v, want near max representable (<16)", big)
	}
	if got := c.Decode(c.Encode(1e-20)); got != 0 {
		t.Fatalf("underflow gave %v, want 0", got)
	}
	if got := c.Decode(c.Encode(-1e-20)); got != 0 {
		t.Fatalf("-underflow gave %v, want -0/0", got)
	}
}

func TestAdaptiveSignPreserved(t *testing.T) {
	c := NewAdaptiveCodecRange(-5, 5)
	for _, v := range []float32{3.7, -3.7, 0.1, -0.1} {
		got := c.Decode(c.Encode(v))
		if (got < 0) != (v < 0) {
			t.Fatalf("sign lost: %v -> %v", v, got)
		}
	}
}

func TestQuickAdaptiveRelError(t *testing.T) {
	c := NewAdaptiveCodecRange(-10, 10)
	step := 1.0 / float64(int(1)<<c.ManBits())
	fn := func(v float32) bool {
		av := math.Abs(float64(v))
		if av < 1.0/1024 || av > 1024 || math.IsNaN(float64(v)) {
			return true
		}
		got := c.Decode(c.Encode(v))
		return math.Abs(float64(got)-float64(v)) <= av*step*2
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedRoundTrip(t *testing.T) {
	c := NewNormalizedCodec(-2, 3)
	rng := rand.New(rand.NewSource(3))
	for n := 0; n < 10000; n++ {
		v := -2 + 5*rng.Float32()
		got := c.Decode(c.Encode(v))
		if math.Abs(float64(got-v)) > float64(c.MaxError())*2 {
			t.Fatalf("|%v - %v| > 2*MaxError %v", got, v, c.MaxError())
		}
	}
}

func TestNormalizedClamping(t *testing.T) {
	c := NewNormalizedCodec(-1, 1)
	if got := c.Decode(c.Encode(5)); got > 1 || got < 0.99 {
		t.Fatalf("above-range clamp gave %v", got)
	}
	if got := c.Decode(c.Encode(-5)); got != -1 {
		t.Fatalf("below-range clamp gave %v", got)
	}
}

func TestNormalizedDegenerateRange(t *testing.T) {
	c := NewNormalizedCodec(4, 4)
	if got := c.Decode(c.Encode(4)); got != 4 {
		t.Fatalf("degenerate range decode gave %v", got)
	}
}

func TestNormalizedFromSample(t *testing.T) {
	c := NewNormalizedCodecFromSample([]float32{-3, 0, 7, float32(math.NaN())})
	lo, hi := c.Range()
	if lo != -3 || hi != 7 {
		t.Fatalf("sampled range = [%v,%v]", lo, hi)
	}
}

func TestNormalizedSliceMatchesScalar(t *testing.T) {
	c := NewNormalizedCodec(-1, 2)
	src := []float32{-1, -0.5, 0, 0.3, 1.999, 2, 5, -5}
	enc := make([]uint16, len(src))
	dec := make([]float32, len(src))
	c.EncodeSlice(enc, src)
	c.DecodeSlice(dec, enc)
	for i, v := range src {
		if enc[i] != c.Encode(v) {
			t.Fatalf("EncodeSlice[%d] diverges from Encode", i)
		}
		if dec[i] != c.Decode(enc[i]) {
			t.Fatalf("DecodeSlice[%d] diverges from Decode", i)
		}
	}
}

func TestQuickNormalizedMonotone(t *testing.T) {
	c := NewNormalizedCodec(-100, 100)
	fn := func(a, b float32) bool {
		if math.IsNaN(float64(a)) || math.IsNaN(float64(b)) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return c.Encode(a) <= c.Encode(b)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizedPrecisionBeatsHalfInRange(t *testing.T) {
	// within a tight known range the normalized codec resolves ~2^-16 of the
	// range, which for [-1,1] is ~3e-5 absolute — better than half's worst
	// absolute error near 1 (~4.9e-4).
	c := NewNormalizedCodec(-1, 1)
	if c.MaxError() >= 1.0/16384 {
		t.Fatalf("MaxError %v too large", c.MaxError())
	}
}

func TestCodecCostOrdering(t *testing.T) {
	// sanity check on the paper's rationale for method 3: its per-value cost
	// (1 FMA + shift) must be below method 2's (bit-field surgery). We proxy
	// cost with rough operation counts via a micro-benchmark in bench tests;
	// here we only verify all three produce finite output on a stress vector.
	vals := []float32{0, -0, 1, -1, 0.1, 65504, 1e-7, -1e-7}
	a := NewAdaptiveCodecRange(-24, 16)
	n := NewNormalizedCodec(-70000, 70000)
	for _, v := range vals {
		if f := FromFloat32(v).Float32(); math.IsNaN(float64(f)) {
			t.Fatalf("half NaN for %v", v)
		}
		if f := a.Decode(a.Encode(v)); math.IsNaN(float64(f)) {
			t.Fatalf("adaptive NaN for %v", v)
		}
		if f := n.Decode(n.Encode(v)); math.IsNaN(float64(f)) {
			t.Fatalf("normalized NaN for %v", v)
		}
	}
}
