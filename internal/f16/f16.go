// Package f16 implements the three 32-bit → 16-bit lossy floating-point
// codecs of the paper's on-the-fly compression scheme (§6.5, Fig. 5d):
//
//	Method 1 — IEEE 754 binary16 (1 sign, 5 exponent, 10 mantissa bits).
//	Method 2 — adaptive exponent width: the exponent field is sized to the
//	           dynamic range recorded during the coarse preprocessing run,
//	           and the remaining bits go to the mantissa.
//	Method 3 — range normalization: values are affinely mapped into [1,2),
//	           where the IEEE exponent is constant, so all 16 bits can store
//	           mantissa. This is the cheapest and the one the paper adopts
//	           for most velocity and stress variables.
//
// All three methods halve memory footprint and DMA traffic; they differ in
// accuracy and conversion cost.
package f16

import "math"

// Half is an IEEE 754 binary16 value (method 1).
type Half uint16

// FromFloat32 converts f to binary16 with round-to-nearest-even,
// handling subnormals, infinities and NaN.
func FromFloat32(f float32) Half {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	frac := b & 0x7fffff

	switch {
	case exp == 0xff: // Inf or NaN
		if frac != 0 {
			return Half(sign | 0x7e00) // quiet NaN
		}
		return Half(sign | 0x7c00)
	case exp == 0 && frac == 0:
		return Half(sign)
	}

	// unbiased exponent
	e := exp - 127
	switch {
	case e > 15: // overflow -> Inf
		return Half(sign | 0x7c00)
	case e >= -14: // normal half
		// round mantissa from 23 to 10 bits, round-to-nearest-even
		mant := frac >> 13
		round := frac & 0x1fff
		if round > 0x1000 || (round == 0x1000 && mant&1 == 1) {
			mant++
		}
		h := uint16(e+15)<<10 + uint16(mant) // mantissa carry may bump exponent; that is correct
		return Half(sign | h)
	case e >= -25: // subnormal half (e == -25 can still round up to one ulp)
		shift := uint32(-e - 1) // 14..24
		m24 := frac | 0x800000
		mant := m24 >> shift
		rem := m24 & (1<<shift - 1)
		half := uint32(1) << (shift - 1)
		if rem > half || (rem == half && mant&1 == 1) {
			mant++
		}
		return Half(sign | uint16(mant))
	default: // underflow -> signed zero
		return Half(sign)
	}
}

// Float32 converts the binary16 value back to float32 (exact).
func (h Half) Float32() float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	frac := uint32(h & 0x3ff)

	switch {
	case exp == 0x1f: // Inf/NaN
		if frac != 0 {
			return math.Float32frombits(sign | 0x7fc00000 | frac<<13)
		}
		return math.Float32frombits(sign | 0x7f800000)
	case exp == 0:
		if frac == 0 {
			return math.Float32frombits(sign)
		}
		// subnormal: normalize
		e := uint32(127 - 15 + 1)
		for frac&0x400 == 0 {
			frac <<= 1
			e--
		}
		frac &= 0x3ff
		return math.Float32frombits(sign | e<<23 | frac<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | frac<<13)
	}
}

// EncodeSlice applies FromFloat32 to each element of src into dst.
// dst must have len(src) capacity.
func EncodeSlice(dst []uint16, src []float32) {
	for i, v := range src {
		dst[i] = uint16(FromFloat32(v))
	}
}

// DecodeSlice applies Float32 to each element of src into dst.
func DecodeSlice(dst []float32, src []uint16) {
	for i, v := range src {
		dst[i] = Half(v).Float32()
	}
}
