package f16

import "math"

// AdaptiveCodec is method 2 of paper Fig. 5d: the exponent field width is
// Ne = ceil(log2(Emax-Emin+1)) bits, derived from the dynamic range
// [Emin, Emax] of unbiased binary exponents observed in the coarse
// preprocessing run; the remaining 15-Ne bits store the mantissa and one bit
// stores the sign. Values are clamped into the recorded range.
type AdaptiveCodec struct {
	emin, emax int32  // unbiased exponent range covered
	expBits    uint32 // Ne
	manBits    uint32 // 15 - Ne
}

// NewAdaptiveCodec builds a codec covering the exponent range of the sample
// values. Zeros are ignored when computing the range; a dedicated code
// (all-zero payload with max exponent offset) is reserved for zero.
func NewAdaptiveCodec(sample []float32) *AdaptiveCodec {
	emin, emax := int32(127), int32(-127)
	for _, v := range sample {
		if v == 0 || math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			continue
		}
		e := int32(math.Float32bits(v)>>23&0xff) - 127
		if e < emin {
			emin = e
		}
		if e > emax {
			emax = e
		}
	}
	if emin > emax { // all zero sample
		emin, emax = 0, 0
	}
	return NewAdaptiveCodecRange(emin, emax)
}

// NewAdaptiveCodecRange builds a codec for a known unbiased exponent range.
func NewAdaptiveCodecRange(emin, emax int32) *AdaptiveCodec {
	span := uint32(emax - emin + 2) // +1 for inclusive range, +1 for the zero code
	bits := uint32(0)
	for 1<<bits < span {
		bits++
	}
	if bits > 8 {
		bits = 8
	}
	if bits < 1 {
		bits = 1
	}
	return &AdaptiveCodec{emin: emin, emax: emax, expBits: bits, manBits: 15 - bits}
}

// ExpBits returns the number of exponent bits Ne chosen by the codec.
func (c *AdaptiveCodec) ExpBits() int { return int(c.expBits) }

// ManBits returns the number of mantissa bits (15 - Ne).
func (c *AdaptiveCodec) ManBits() int { return int(c.manBits) }

// Encode compresses v to 16 bits. Values whose exponent falls below the
// covered range flush to zero; above the range they clamp to the largest
// representable magnitude.
func (c *AdaptiveCodec) Encode(v float32) uint16 {
	b := math.Float32bits(v)
	sign := uint16(b>>16) & 0x8000
	e := int32(b>>23&0xff) - 127
	if v == 0 || e < c.emin {
		return sign // zero code: exponent offset 0 is reserved... see Decode
	}
	if e > c.emax {
		e = c.emax
		b |= 0x7fffff // clamp to max magnitude
	}
	eoff := uint16(e-c.emin) + 1 // offset 0 reserved for zero
	// round the mantissa to nearest (a truncating encoder would bias the
	// decompress-compute-compress loop low every step); a carry at the top
	// of the binade clamps to the largest mantissa
	shift := 23 - c.manBits
	mant := (b&0x7fffff + 1<<(shift-1)) >> shift
	if mant >= 1<<c.manBits {
		mant = 1<<c.manBits - 1
	}
	return sign | eoff<<c.manBits | uint16(mant)
}

// Decode expands a 16-bit code back to float32.
func (c *AdaptiveCodec) Decode(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	eoff := uint32(h>>c.manBits) & (1<<c.expBits - 1)
	if eoff == 0 {
		return math.Float32frombits(sign) // signed zero
	}
	e := int32(eoff) - 1 + c.emin
	mant := uint32(h&(1<<c.manBits-1)) << (23 - c.manBits)
	return math.Float32frombits(sign | uint32(e+127)<<23 | mant)
}

// EncodeSlice encodes src into dst elementwise.
func (c *AdaptiveCodec) EncodeSlice(dst []uint16, src []float32) {
	for i, v := range src {
		dst[i] = c.Encode(v)
	}
}

// DecodeSlice decodes src into dst elementwise.
func (c *AdaptiveCodec) DecodeSlice(dst []float32, src []uint16) {
	for i, v := range src {
		dst[i] = c.Decode(v)
	}
}
