package grid

import "fmt"

// Region is a half-open 3D box of interior points,
// [I0,I1) x [J0,J1) x [K0,K1), in block-local coordinates. It is the unit
// of kernel work in the region engine: the step pipeline decomposes a block
// into Regions (z-slabs for compressed storage, interior + boundary shells
// for overlapped halo exchange, tiles for intra-rank parallelism) and every
// stage kernel accepts one. Bounds may address halo layers (negative, or
// beyond the interior extent) where a kernel is defined there — the free
// surface images ghost columns, for example.
type Region struct {
	I0, I1, J0, J1, K0, K1 int
}

// Box returns the region covering a block's whole interior.
func Box(d Dims) Region {
	return Region{I1: d.Nx, J1: d.Ny, K1: d.Nz}
}

// FullXY returns the full-x/y region over the z-slab [k0,k1) — the shape
// every pre-Region kernel signature operated on.
func FullXY(d Dims, k0, k1 int) Region {
	return Region{I1: d.Nx, J1: d.Ny, K0: k0, K1: k1}
}

// Ni, Nj, Nk return the extent along each axis (never negative).
func (r Region) Ni() int { return maxInt(0, r.I1-r.I0) }
func (r Region) Nj() int { return maxInt(0, r.J1-r.J0) }
func (r Region) Nk() int { return maxInt(0, r.K1-r.K0) }

// Empty reports whether the region contains no points.
func (r Region) Empty() bool {
	return r.I0 >= r.I1 || r.J0 >= r.J1 || r.K0 >= r.K1
}

// Points returns the number of points in the region.
func (r Region) Points() int64 {
	return int64(r.Ni()) * int64(r.Nj()) * int64(r.Nk())
}

func (r Region) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)x[%d,%d)", r.I0, r.I1, r.J0, r.J1, r.K0, r.K1)
}

// Split partitions the region into at most ti*tj*tk sub-regions, near-equal
// along each axis (an axis with fewer points than requested parts yields
// fewer parts). The parts exactly tile r and are returned x-major, matching
// the memory order of the fields.
func (r Region) Split(ti, tj, tk int) []Region {
	if r.Empty() || ti < 1 || tj < 1 || tk < 1 {
		if r.Empty() {
			return nil
		}
		return []Region{r}
	}
	is := cuts(r.I0, r.I1, ti)
	js := cuts(r.J0, r.J1, tj)
	ks := cuts(r.K0, r.K1, tk)
	out := make([]Region, 0, (len(is)-1)*(len(js)-1)*(len(ks)-1))
	for a := 0; a+1 < len(is); a++ {
		for b := 0; b+1 < len(js); b++ {
			for c := 0; c+1 < len(ks); c++ {
				out = append(out, Region{
					I0: is[a], I1: is[a+1],
					J0: js[b], J1: js[b+1],
					K0: ks[c], K1: ks[c+1],
				})
			}
		}
	}
	return out
}

// SplitN partitions the region into roughly n sub-regions for tile
// parallelism, cutting x first and y only when x alone cannot supply n
// parts. The z axis is never cut: z is the fastest-varying (contiguous)
// axis, so keeping z-rows whole keeps every tile's memory walk streaming.
func (r Region) SplitN(n int) []Region {
	if r.Empty() {
		return nil
	}
	if n <= 1 {
		return []Region{r}
	}
	ti := minInt(n, r.Ni())
	tj := 1
	if ti < n {
		// floor, so ti*tj never exceeds n — a fan must not create more
		// tiles than the worker pool has slots to run concurrently
		tj = maxInt(1, minInt(n/ti, r.Nj()))
	}
	return r.Split(ti, tj, 1)
}

// cuts returns t+1 cut points dividing [lo,hi) into at most t near-equal
// parts (the first hi-lo parts get the remainder, one extra point each).
func cuts(lo, hi, t int) []int {
	n := hi - lo
	if t > n {
		t = n
	}
	base, rem := n/t, n%t
	out := make([]int, 0, t+1)
	p := lo
	out = append(out, p)
	for i := 0; i < t; i++ {
		p += base
		if i < rem {
			p++
		}
		out = append(out, p)
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
