package grid

import "testing"

// markCells asserts the regions are pairwise disjoint and together cover r
// exactly, by marking every cell.
func markCells(t *testing.T, r Region, parts []Region) {
	t.Helper()
	seen := make(map[[3]int]int)
	var total int64
	for pi, p := range parts {
		if p.Empty() {
			t.Fatalf("part %d is empty: %v", pi, p)
		}
		if p.I0 < r.I0 || p.I1 > r.I1 || p.J0 < r.J0 || p.J1 > r.J1 || p.K0 < r.K0 || p.K1 > r.K1 {
			t.Fatalf("part %v escapes %v", p, r)
		}
		total += p.Points()
		for i := p.I0; i < p.I1; i++ {
			for j := p.J0; j < p.J1; j++ {
				for k := p.K0; k < p.K1; k++ {
					c := [3]int{i, j, k}
					if prev, dup := seen[c]; dup {
						t.Fatalf("cell %v in parts %d and %d", c, prev, pi)
					}
					seen[c] = pi
				}
			}
		}
	}
	if total != r.Points() {
		t.Fatalf("parts cover %d points, region has %d", total, r.Points())
	}
}

func TestSplitCoversDisjoint(t *testing.T) {
	r := Region{I0: 1, I1: 8, J0: 0, J1: 5, K0: 2, K1: 9}
	cases := [][3]int{
		{1, 1, 1}, {2, 2, 2}, {3, 1, 2}, {7, 5, 7},
		// more tiles than extent: clamped, still a tiling
		{20, 20, 20},
	}
	for _, c := range cases {
		markCells(t, r, r.Split(c[0], c[1], c[2]))
	}
	if parts := (Region{}).Split(2, 2, 2); parts != nil {
		t.Fatalf("empty region split to %v", parts)
	}
}

func TestSplitDegenerateOneCell(t *testing.T) {
	r := Region{I1: 3, J1: 4, K1: 2}
	parts := r.Split(3, 4, 2)
	if len(parts) != 24 {
		t.Fatalf("want 24 one-cell parts, got %d", len(parts))
	}
	for _, p := range parts {
		if p.Points() != 1 {
			t.Fatalf("part %v is not one cell", p)
		}
	}
	markCells(t, r, parts)
}

func TestSplitNCoversAndNeverCutsZ(t *testing.T) {
	r := Box(Dims{Nx: 13, Ny: 7, Nz: 9})
	for n := 1; n <= 32; n++ {
		parts := r.SplitN(n)
		if len(parts) > n {
			t.Fatalf("SplitN(%d) produced %d parts", n, len(parts))
		}
		for _, p := range parts {
			if p.K0 != r.K0 || p.K1 != r.K1 {
				t.Fatalf("SplitN(%d) cut the z axis: %v", n, p)
			}
		}
		markCells(t, r, parts)
	}
}

func TestSplitNNarrowRegion(t *testing.T) {
	// a 2-wide halo shell: SplitN must spill the split over to y rather
	// than return fewer usable tiles than it could
	r := Region{I1: 2, J1: 64, K1: 16}
	parts := r.SplitN(8)
	if len(parts) < 4 {
		t.Fatalf("SplitN(8) on a narrow shell made only %d parts", len(parts))
	}
	markCells(t, r, parts)
}

func TestRegionHelpers(t *testing.T) {
	d := Dims{Nx: 4, Ny: 5, Nz: 6}
	if Box(d) != (Region{I1: 4, J1: 5, K1: 6}) {
		t.Fatal("Box mismatch")
	}
	if FullXY(d, 2, 4) != (Region{I1: 4, J1: 5, K0: 2, K1: 4}) {
		t.Fatal("FullXY mismatch")
	}
	if !(Region{I0: 3, I1: 3, J1: 1, K1: 1}).Empty() {
		t.Fatal("zero-width region must be empty")
	}
	if (Region{I1: 1, J1: 1, K1: 1}).Empty() {
		t.Fatal("one-cell region must not be empty")
	}
	if got := Box(d).Points(); got != 120 {
		t.Fatalf("Points = %d", got)
	}
}

// FuzzHaloRoundTrip drives PackHalo/UnpackHalo as a neighbour exchange: the
// values a sender packs at a face must land, unchanged, in the ghost layers
// a same-sized receiver unpacks at the opposite face — for every face and
// arbitrary field contents.
func FuzzHaloRoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(5), uint8(3))
	f.Add(int64(42), uint8(8), uint8(2), uint8(6))
	f.Add(int64(-7), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nx, ny, nz uint8) {
		d := Dims{Nx: int(nx%12) + 1, Ny: int(ny%12) + 1, Nz: int(nz%12) + 1}
		const h = 2
		src := NewField(d, h)
		rng := uint64(seed) | 1
		for i := range src.Data {
			rng = rng*6364136223846793005 + 1442695040888963407
			src.Data[i] = float32(int32(rng>>33)) / (1 << 16)
		}
		for _, face := range []Face{FaceXMinus, FaceXPlus, FaceYMinus, FaceYPlus} {
			buf := make([]float32, src.HaloLen(face))
			src.PackHalo(face, buf)
			dst := NewField(d, h)
			dst.UnpackHalo(face.Opposite(), buf)

			// si/sj translate a sender cell to the receiver's coordinates
			// (the receiver sits on the `face` side of the sender), and
			// i0..j1 walk the layers PackHalo copied
			var si, sj int
			var i0, i1, j0, j1 int
			switch face {
			case FaceXMinus:
				si, i0, i1, j0, j1 = d.Nx, 0, h, -h, d.Ny+h
			case FaceXPlus:
				si, i0, i1, j0, j1 = -d.Nx, d.Nx-h, d.Nx, -h, d.Ny+h
			case FaceYMinus:
				sj, i0, i1, j0, j1 = d.Ny, -h, d.Nx+h, 0, h
			case FaceYPlus:
				sj, i0, i1, j0, j1 = -d.Ny, -h, d.Nx+h, d.Ny-h, d.Ny
			}
			for i := i0; i < i1; i++ {
				for j := j0; j < j1; j++ {
					for k := -h; k < d.Nz+h; k++ {
						got, want := dst.At(i+si, j+sj, k), src.At(i, j, k)
						if got != want {
							t.Fatalf("face %v: ghost (%d,%d,%d) = %g, sender had %g",
								face, i+si, j+sj, k, got, want)
						}
					}
				}
			}
		}
	})
}
