package grid

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewFieldShape(t *testing.T) {
	f := NewField(Dims{4, 5, 6}, 2)
	want := (4 + 4) * (5 + 4) * (6 + 4)
	if len(f.Data) != want {
		t.Fatalf("len(Data) = %d, want %d", len(f.Data), want)
	}
	if f.TotalDims() != (Dims{8, 9, 10}) {
		t.Fatalf("TotalDims = %v", f.TotalDims())
	}
	if f.Bytes() != int64(want)*4 {
		t.Fatalf("Bytes = %d", f.Bytes())
	}
}

func TestDimsPoints(t *testing.T) {
	d := Dims{40000, 39000, 5000}
	if got := d.Points(); got != 7_800_000_000_000 {
		t.Fatalf("paper extreme case: %d points, want 7.8 trillion", got)
	}
	if !d.Valid() {
		t.Fatal("extreme dims should be valid")
	}
	if (Dims{0, 1, 1}).Valid() {
		t.Fatal("zero extent must be invalid")
	}
}

func TestIdxZFastest(t *testing.T) {
	f := NewField(Dims{3, 3, 8}, 2)
	if f.Idx(0, 0, 1)-f.Idx(0, 0, 0) != 1 {
		t.Error("z must be the fastest axis (stride 1)")
	}
	if f.Idx(0, 1, 0)-f.Idx(0, 0, 0) != f.StrideY() {
		t.Error("y stride mismatch")
	}
	if f.Idx(1, 0, 0)-f.Idx(0, 0, 0) != f.StrideX() {
		t.Error("x stride mismatch")
	}
	if f.StrideX() <= f.StrideY() || f.StrideY() <= 1 {
		t.Errorf("stride ordering wrong: sx=%d sy=%d", f.StrideX(), f.StrideY())
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	f := NewField(Dims{4, 4, 4}, 2)
	f.Set(1, 2, 3, 42)
	if f.At(1, 2, 3) != 42 {
		t.Fatal("Set/At round trip failed")
	}
	f.Add(1, 2, 3, 8)
	if f.At(1, 2, 3) != 50 {
		t.Fatal("Add failed")
	}
	// halo addressing
	f.Set(-1, -2, -2, 7)
	if f.At(-1, -2, -2) != 7 {
		t.Fatal("halo addressing failed")
	}
}

func TestUniqueIndices(t *testing.T) {
	f := NewField(Dims{3, 4, 5}, 1)
	seen := map[int]bool{}
	for i := -1; i < 4; i++ {
		for j := -1; j < 5; j++ {
			for k := -1; k < 6; k++ {
				idx := f.Idx(i, j, k)
				if idx < 0 || idx >= len(f.Data) {
					t.Fatalf("index out of range at (%d,%d,%d): %d", i, j, k, idx)
				}
				if seen[idx] {
					t.Fatalf("duplicate index at (%d,%d,%d)", i, j, k)
				}
				seen[idx] = true
			}
		}
	}
	if len(seen) != len(f.Data) {
		t.Fatalf("covered %d of %d slots", len(seen), len(f.Data))
	}
}

func TestFillInteriorLeavesHalo(t *testing.T) {
	f := NewField(Dims{3, 3, 3}, 2)
	f.Fill(-1)
	f.FillInterior(5)
	if f.At(0, 0, 0) != 5 || f.At(2, 2, 2) != 5 {
		t.Fatal("interior not filled")
	}
	if f.At(-1, 0, 0) != -1 || f.At(0, 0, 3) != -1 {
		t.Fatal("halo overwritten by FillInterior")
	}
}

func TestRowViews(t *testing.T) {
	f := NewField(Dims{2, 2, 6}, 2)
	row := f.Row(1, 1)
	if len(row) != 6 {
		t.Fatalf("Row len %d", len(row))
	}
	row[3] = 9
	if f.At(1, 1, 3) != 9 {
		t.Fatal("Row is not a view")
	}
	rh := f.RowWithHalo(1, 1)
	if len(rh) != 10 {
		t.Fatalf("RowWithHalo len %d", len(rh))
	}
	if rh[2+3] != 9 {
		t.Fatal("RowWithHalo offset wrong")
	}
}

func TestCloneAndDiff(t *testing.T) {
	f := NewField(Dims{4, 4, 4}, 2)
	rng := rand.New(rand.NewSource(1))
	for i := range f.Data {
		f.Data[i] = rng.Float32()
	}
	g := f.Clone()
	if !f.InteriorEqual(g, 0) {
		t.Fatal("clone differs")
	}
	if f.L2Diff(g) != 0 {
		t.Fatal("L2Diff of clone nonzero")
	}
	g.Set(0, 0, 0, g.At(0, 0, 0)+1)
	if f.InteriorEqual(g, 0.5) {
		t.Fatal("InteriorEqual missed difference")
	}
	if f.L2Diff(g) <= 0 {
		t.Fatal("L2Diff missed difference")
	}
}

func TestMinMaxMaxAbs(t *testing.T) {
	f := NewField(Dims{3, 3, 3}, 1)
	f.Fill(100) // halo values must not leak into interior stats
	f.FillInterior(0)
	f.Set(1, 1, 1, -7)
	f.Set(2, 2, 2, 3)
	lo, hi := f.MinMax()
	if lo != -7 || hi != 3 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
	if f.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v", f.MaxAbs())
	}
}

func TestPackUnpackHaloRoundTrip(t *testing.T) {
	for _, face := range []Face{FaceXMinus, FaceXPlus, FaceYMinus, FaceYPlus} {
		a := NewField(Dims{5, 6, 7}, 2)
		b := NewField(Dims{5, 6, 7}, 2)
		rng := rand.New(rand.NewSource(2))
		for i := range a.Data {
			a.Data[i] = rng.Float32()
		}
		buf := make([]float32, a.HaloLen(face))
		a.PackHalo(face, buf)
		b.UnpackHalo(face.Opposite(), buf)

		// b's ghost layers on the opposite face must equal a's boundary layers.
		switch face {
		case FaceXPlus:
			for di := 0; di < 2; di++ {
				for j := 0; j < 6; j++ {
					for k := 0; k < 7; k++ {
						if b.At(-2+di, j, k) != a.At(5-2+di, j, k) {
							t.Fatalf("face %v ghost mismatch", face)
						}
					}
				}
			}
		case FaceYPlus:
			for dj := 0; dj < 2; dj++ {
				for i := 0; i < 5; i++ {
					if b.At(i, -2+dj, 0) != a.At(i, 6-2+dj, 0) {
						t.Fatalf("face %v ghost mismatch", face)
					}
				}
			}
		}
	}
}

func TestHaloLenMatchesBuffer(t *testing.T) {
	f := NewField(Dims{4, 5, 6}, 2)
	wantX := 2 * (5 + 4) * (6 + 4)
	if f.HaloLen(FaceXMinus) != wantX {
		t.Fatalf("HaloLen x = %d want %d", f.HaloLen(FaceXMinus), wantX)
	}
	wantY := 2 * (4 + 4) * (6 + 4)
	if f.HaloLen(FaceYPlus) != wantY {
		t.Fatalf("HaloLen y = %d want %d", f.HaloLen(FaceYPlus), wantY)
	}
}

func TestCopyHaloFromNeighbor(t *testing.T) {
	left := NewField(Dims{4, 4, 4}, 2)
	right := NewField(Dims{4, 4, 4}, 2)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				left.Set(i, j, k, float32(100+i))
				right.Set(i, j, k, float32(200+i))
			}
		}
	}
	// right neighbour sits on the x+ side of left
	left.CopyHaloFromNeighbor(FaceXPlus, right)
	if left.At(4, 1, 1) != 200 || left.At(5, 1, 1) != 201 {
		t.Fatalf("ghost from right neighbour wrong: %v %v", left.At(4, 1, 1), left.At(5, 1, 1))
	}
	right.CopyHaloFromNeighbor(FaceXMinus, left)
	if right.At(-1, 1, 1) != 103 || right.At(-2, 1, 1) != 102 {
		t.Fatalf("ghost from left neighbour wrong: %v %v", right.At(-1, 1, 1), right.At(-2, 1, 1))
	}
}

func TestFaceOpposite(t *testing.T) {
	for _, f := range []Face{FaceXMinus, FaceXPlus, FaceYMinus, FaceYPlus} {
		if f.Opposite().Opposite() != f {
			t.Fatalf("Opposite not involutive for %v", f)
		}
		if f.Opposite() == f {
			t.Fatalf("Opposite fixed point for %v", f)
		}
		if f.String() == "?" {
			t.Fatalf("missing String for %v", int(f))
		}
	}
}

func TestExtractInsertSubfield(t *testing.T) {
	f := NewField(Dims{8, 8, 8}, 2)
	rng := rand.New(rand.NewSource(3))
	for i := range f.Data {
		f.Data[i] = rng.Float32()
	}
	sub := f.ExtractSubfield(2, 2, 2, Dims{4, 4, 4}, 2)
	// interior matches
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				if sub.At(i, j, k) != f.At(2+i, 2+j, 2+k) {
					t.Fatal("subfield interior mismatch")
				}
			}
		}
	}
	// halo of subfield filled from parent interior
	if sub.At(-1, 0, 0) != f.At(1, 2, 2) {
		t.Fatal("subfield halo not filled from parent")
	}
	g := NewField(Dims{8, 8, 8}, 2)
	g.InsertSubfield(2, 2, 2, sub)
	for i := 0; i < 4; i++ {
		for k := 0; k < 4; k++ {
			if g.At(2+i, 3, 2+k) != f.At(2+i, 3, 2+k) {
				t.Fatal("InsertSubfield mismatch")
			}
		}
	}
	if g.At(0, 0, 0) != 0 {
		t.Fatal("InsertSubfield wrote outside target region")
	}
}

func TestVecFieldBasics(t *testing.T) {
	f := NewVecField(Dims{3, 3, 4}, 2, 6)
	f.Set(1, 2, 3, 4, 9)
	if f.At(1, 2, 3, 4) != 9 {
		t.Fatal("VecField Set/At failed")
	}
	p := f.Point(1, 2, 3)
	if len(p) != 6 || p[4] != 9 {
		t.Fatal("Point view wrong")
	}
	p[0] = 1
	if f.At(1, 2, 3, 0) != 1 {
		t.Fatal("Point not a view")
	}
	if f.Bytes() != int64(len(f.Data))*4 {
		t.Fatal("Bytes wrong")
	}
}

func TestVecFieldComponentsAdjacent(t *testing.T) {
	f := NewVecField(Dims{2, 2, 2}, 1, 3)
	if f.Idx(0, 0, 0, 1)-f.Idx(0, 0, 0, 0) != 1 {
		t.Fatal("components must be adjacent (fusion layout)")
	}
	if f.Idx(0, 0, 1, 0)-f.Idx(0, 0, 0, 0) != 3 {
		t.Fatal("z stride must be NC elements")
	}
}

func TestFuseUnfuseRoundTrip(t *testing.T) {
	d := Dims{3, 4, 5}
	u := NewField(d, 2)
	v := NewField(d, 2)
	w := NewField(d, 2)
	rng := rand.New(rand.NewSource(4))
	for i := range u.Data {
		u.Data[i], v.Data[i], w.Data[i] = rng.Float32(), rng.Float32(), rng.Float32()
	}
	fused := FuseFields(u, v, w)
	if fused.NC != 3 {
		t.Fatalf("NC = %d", fused.NC)
	}
	if fused.At(1, 2, 3, 1) != v.At(1, 2, 3) {
		t.Fatal("fusion misplaced component")
	}
	parts := fused.Unfuse()
	for c, orig := range []*Field{u, v, w} {
		if !parts[c].InteriorEqual(orig, 0) {
			t.Fatalf("unfuse component %d mismatch", c)
		}
	}
}

func TestDMABlockBytesFusionEffect(t *testing.T) {
	d := Dims{8, 8, 32}
	single := NewVecField(d, 2, 1)
	vel := NewVecField(d, 2, 3)
	str := NewVecField(d, 2, 6)
	wz := 32
	if single.DMABlockBytes(wz) != 128 {
		t.Fatalf("unfused block = %d, want 128", single.DMABlockBytes(wz))
	}
	// Paper §6.4: fusion raises the chunk from 128 B to 384/768 B for the
	// same Wz, crossing the ~512 B knee of the DMA bandwidth curve.
	if vel.DMABlockBytes(wz) != 384 || str.DMABlockBytes(wz) != 768 {
		t.Fatalf("fused blocks = %d,%d", vel.DMABlockBytes(wz), str.DMABlockBytes(wz))
	}
}

func TestQuickIdxBijective(t *testing.T) {
	f := NewField(Dims{6, 7, 8}, 2)
	fn := func(i8, j8, k8 uint8) bool {
		i := int(i8%10) - 2
		j := int(j8%11) - 2
		k := int(k8%12) - 2
		idx := f.Idx(i, j, k)
		// invert
		rem := idx
		ri := rem/f.StrideX() - f.H
		rem %= f.StrideX()
		rj := rem/f.StrideY() - f.H
		rk := rem%f.StrideY() - f.H
		return ri == i && rj == j && rk == k
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFuseIsLossless(t *testing.T) {
	fn := func(vals []float32) bool {
		d := Dims{2, 2, 3}
		a := NewField(d, 1)
		b := NewField(d, 1)
		for i := range a.Data {
			if len(vals) > 0 {
				a.Data[i] = vals[i%len(vals)]
				b.Data[i] = -vals[i%len(vals)]
			}
		}
		parts := FuseFields(a, b).Unfuse()
		return parts[0].InteriorEqual(a, 0) && parts[1].InteriorEqual(b, 0)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
