package grid

import "fmt"

// VecField stores N scalar components interleaved per grid point — the
// "array fusion" layout of paper §6.4. Fusing the three velocity components
// into one vec3 array and the six stress components into one vec6 array
// raises the size of the contiguous chunk transferred per DMA request from
// ~128 bytes to ~432-512 bytes, which on the SW26010 roughly doubles the
// effective memory bandwidth (paper Table 3).
type VecField struct {
	Dims
	H    int
	NC   int // number of interleaved components
	Data []float32

	sx, sy int // strides in points (multiply by NC for element strides)
	origin int // element offset of component 0 at interior point (0,0,0)
}

// NewVecField allocates a zeroed interleaved field with nc components.
func NewVecField(d Dims, h, nc int) *VecField {
	if !d.Valid() {
		panic(fmt.Sprintf("grid: invalid dims %v", d))
	}
	if nc <= 0 {
		panic("grid: non-positive component count")
	}
	tx, ty, tz := d.Nx+2*h, d.Ny+2*h, d.Nz+2*h
	f := &VecField{
		Dims: d,
		H:    h,
		NC:   nc,
		Data: make([]float32, tx*ty*tz*nc),
		sx:   ty * tz,
		sy:   tz,
	}
	f.origin = (h*f.sx + h*f.sy + h) * nc
	return f
}

// Idx returns the element index of component c at interior point (i,j,k).
func (f *VecField) Idx(i, j, k, c int) int {
	return f.origin + (i*f.sx+j*f.sy+k)*f.NC + c
}

// At returns component c at interior point (i,j,k).
func (f *VecField) At(i, j, k, c int) float32 { return f.Data[f.Idx(i, j, k, c)] }

// Set stores component c at interior point (i,j,k).
func (f *VecField) Set(i, j, k, c int, v float32) { f.Data[f.Idx(i, j, k, c)] = v }

// Point returns the NC components at (i,j,k) as a sub-slice (mutable view).
func (f *VecField) Point(i, j, k int) []float32 {
	base := f.Idx(i, j, k, 0)
	return f.Data[base : base+f.NC]
}

// Bytes returns the allocated size in bytes.
func (f *VecField) Bytes() int64 { return int64(len(f.Data)) * 4 }

// FuseFields packs nc scalar fields of identical shape into one VecField.
func FuseFields(fields ...*Field) *VecField {
	if len(fields) == 0 {
		panic("grid: FuseFields with no fields")
	}
	d, h := fields[0].Dims, fields[0].H
	for _, f := range fields[1:] {
		if f.Dims != d || f.H != h {
			panic("grid: FuseFields shape mismatch")
		}
	}
	out := NewVecField(d, h, len(fields))
	for c, f := range fields {
		for idx, v := range f.Data {
			out.Data[idx*len(fields)+c] = v
		}
	}
	return out
}

// Unfuse unpacks the VecField back into len == NC scalar fields.
func (f *VecField) Unfuse() []*Field {
	out := make([]*Field, f.NC)
	for c := range out {
		out[c] = NewField(f.Dims, f.H)
	}
	for idx := 0; idx < len(f.Data)/f.NC; idx++ {
		for c := 0; c < f.NC; c++ {
			out[c].Data[idx] = f.Data[idx*f.NC+c]
		}
	}
	return out
}

// DMABlockBytes returns the size in bytes of the contiguous chunk a DMA
// transfer moves when loading Wz consecutive z points of this field — the
// quantity the array-fusion optimization maximizes (paper eq. 9 discussion).
func (f *VecField) DMABlockBytes(wz int) int {
	return wz * f.NC * 4
}
