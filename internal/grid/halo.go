package grid

// Face identifies one of the four lateral halo faces exchanged between
// neighbouring MPI ranks in the paper's 2D (x,y) process decomposition.
// The z direction is never decomposed across processes (§6.3 step 1).
type Face int

const (
	FaceXMinus Face = iota
	FaceXPlus
	FaceYMinus
	FaceYPlus
)

func (f Face) String() string {
	switch f {
	case FaceXMinus:
		return "x-"
	case FaceXPlus:
		return "x+"
	case FaceYMinus:
		return "y-"
	case FaceYPlus:
		return "y+"
	}
	return "?"
}

// Opposite returns the face that a neighbour sees for f.
func (f Face) Opposite() Face {
	switch f {
	case FaceXMinus:
		return FaceXPlus
	case FaceXPlus:
		return FaceXMinus
	case FaceYMinus:
		return FaceYPlus
	default:
		return FaceYMinus
	}
}

// HaloLen returns the number of float32 values in one face halo of width H
// (including corner columns along the orthogonal horizontal axis, and the
// full z extent with halos so a single exchange round suffices).
func (f *Field) HaloLen(face Face) int {
	tz := f.Nz + 2*f.H
	switch face {
	case FaceXMinus, FaceXPlus:
		return f.H * (f.Ny + 2*f.H) * tz
	default:
		return f.H * (f.Nx + 2*f.H) * tz
	}
}

// PackHalo copies the H interior layers adjacent to the given face into buf,
// which must have length HaloLen(face). These are the layers a neighbouring
// rank needs as its ghost data.
func (f *Field) PackHalo(face Face, buf []float32) {
	n := 0
	switch face {
	case FaceXMinus:
		n = f.packXLayers(0, buf)
	case FaceXPlus:
		n = f.packXLayers(f.Nx-f.H, buf)
	case FaceYMinus:
		n = f.packYLayers(0, buf)
	case FaceYPlus:
		n = f.packYLayers(f.Ny-f.H, buf)
	}
	if n != len(buf) {
		panic("grid: PackHalo buffer length mismatch")
	}
}

// UnpackHalo copies buf into the H ghost layers outside the given face.
func (f *Field) UnpackHalo(face Face, buf []float32) {
	n := 0
	switch face {
	case FaceXMinus:
		n = f.unpackXLayers(-f.H, buf)
	case FaceXPlus:
		n = f.unpackXLayers(f.Nx, buf)
	case FaceYMinus:
		n = f.unpackYLayers(-f.H, buf)
	case FaceYPlus:
		n = f.unpackYLayers(f.Ny, buf)
	}
	if n != len(buf) {
		panic("grid: UnpackHalo buffer length mismatch")
	}
}

func (f *Field) packXLayers(i0 int, buf []float32) int {
	n := 0
	tz := f.Nz + 2*f.H
	for di := 0; di < f.H; di++ {
		for j := -f.H; j < f.Ny+f.H; j++ {
			base := f.Idx(i0+di, j, -f.H)
			n += copy(buf[n:], f.Data[base:base+tz])
		}
	}
	return n
}

func (f *Field) unpackXLayers(i0 int, buf []float32) int {
	n := 0
	tz := f.Nz + 2*f.H
	for di := 0; di < f.H; di++ {
		for j := -f.H; j < f.Ny+f.H; j++ {
			base := f.Idx(i0+di, j, -f.H)
			n += copy(f.Data[base:base+tz], buf[n:n+tz])
		}
	}
	return n
}

func (f *Field) packYLayers(j0 int, buf []float32) int {
	n := 0
	tz := f.Nz + 2*f.H
	for i := -f.H; i < f.Nx+f.H; i++ {
		for dj := 0; dj < f.H; dj++ {
			base := f.Idx(i, j0+dj, -f.H)
			n += copy(buf[n:], f.Data[base:base+tz])
		}
	}
	return n
}

func (f *Field) unpackYLayers(j0 int, buf []float32) int {
	n := 0
	tz := f.Nz + 2*f.H
	for i := -f.H; i < f.Nx+f.H; i++ {
		for dj := 0; dj < f.H; dj++ {
			base := f.Idx(i, j0+dj, -f.H)
			n += copy(f.Data[base:base+tz], buf[n:n+tz])
		}
	}
	return n
}

// CopyHaloFromNeighbor performs a direct in-process halo exchange between f
// and its neighbour g across the given face of f (g lies on the `face` side).
// It is the shared-memory analogue of a Pack/Send/Recv/Unpack round and is
// used by the serial multi-block reference path and in tests.
func (f *Field) CopyHaloFromNeighbor(face Face, g *Field) {
	buf := make([]float32, g.HaloLen(face.Opposite()))
	g.PackHalo(face.Opposite(), buf)
	f.UnpackHalo(face, buf)
}

// ExtractSubfield copies the interior region [i0,i0+d.Nx) x [j0,j0+d.Ny) x
// [k0,k0+d.Nz) of f into a new field with halo h, filling that field's halo
// from f where available (so stencils at block edges see true data).
func (f *Field) ExtractSubfield(i0, j0, k0 int, d Dims, h int) *Field {
	out := NewField(d, h)
	for i := -h; i < d.Nx+h; i++ {
		for j := -h; j < d.Ny+h; j++ {
			si, sj := i0+i, j0+j
			if si < -f.H || si >= f.Nx+f.H || sj < -f.H || sj >= f.Ny+f.H {
				continue
			}
			srcBase := f.Idx(si, sj, k0-h)
			dstBase := out.Idx(i, j, -h)
			copy(out.Data[dstBase:dstBase+d.Nz+2*h], f.Data[srcBase:srcBase+d.Nz+2*h])
		}
	}
	return out
}

// InsertSubfield writes sub's interior into f at offset (i0,j0,k0).
func (f *Field) InsertSubfield(i0, j0, k0 int, sub *Field) {
	for i := 0; i < sub.Nx; i++ {
		for j := 0; j < sub.Ny; j++ {
			srcBase := sub.Idx(i, j, 0)
			dstBase := f.Idx(i0+i, j0+j, k0)
			copy(f.Data[dstBase:dstBase+sub.Nz], sub.Data[srcBase:srcBase+sub.Nz])
		}
	}
}
