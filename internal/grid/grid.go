// Package grid provides 3D staggered-grid field storage for the
// finite-difference earthquake solver.
//
// Following the paper's memory layout (§6.3), the z axis (depth) is the
// fastest-varying axis, y the second, and x the slowest. Fields carry a halo
// of H ghost layers on every side so that 4th-order stencils (H=2) can be
// evaluated at every interior point without bounds checks.
//
// Two layouts are provided:
//
//   - Field: one scalar per point (structure-of-arrays when several Fields
//     are used side by side);
//   - VecField: N scalars interleaved per point (array-of-structures), the
//     "array fusion" layout of §6.4 that raises DMA block sizes from ~128 B
//     to ~432-512 B.
package grid

import (
	"fmt"
	"math"
)

// DefaultHalo is the ghost-layer width required by the 4th-order staggered
// stencil used throughout the solver.
const DefaultHalo = 2

// Dims describes the interior extent of a grid block.
type Dims struct {
	Nx, Ny, Nz int
}

// Points returns the number of interior grid points.
func (d Dims) Points() int64 {
	return int64(d.Nx) * int64(d.Ny) * int64(d.Nz)
}

// Valid reports whether all extents are positive.
func (d Dims) Valid() bool {
	return d.Nx > 0 && d.Ny > 0 && d.Nz > 0
}

func (d Dims) String() string {
	return fmt.Sprintf("%dx%dx%d", d.Nx, d.Ny, d.Nz)
}

// Field is a scalar 3D field with halo layers, stored flat with z fastest.
type Field struct {
	Dims
	H    int       // halo width on each side
	Data []float32 // len == (Nx+2H)*(Ny+2H)*(Nz+2H)

	// strides (in elements) for x and y; z stride is 1
	sx, sy int
	origin int // offset of interior point (0,0,0)
}

// NewField allocates a zeroed field of the given interior dims and halo h.
func NewField(d Dims, h int) *Field {
	if !d.Valid() {
		panic(fmt.Sprintf("grid: invalid dims %v", d))
	}
	if h < 0 {
		panic("grid: negative halo")
	}
	tx, ty, tz := d.Nx+2*h, d.Ny+2*h, d.Nz+2*h
	f := &Field{
		Dims: d,
		H:    h,
		Data: make([]float32, tx*ty*tz),
		sx:   ty * tz,
		sy:   tz,
	}
	f.origin = h*f.sx + h*f.sy + h
	return f
}

// Idx returns the flat index of interior point (i,j,k). Negative indices and
// indices beyond the interior extent address halo layers, which is legal as
// long as they stay within the allocated halo.
func (f *Field) Idx(i, j, k int) int {
	return f.origin + i*f.sx + j*f.sy + k
}

// At returns the value at interior point (i,j,k).
func (f *Field) At(i, j, k int) float32 { return f.Data[f.Idx(i, j, k)] }

// Set stores v at interior point (i,j,k).
func (f *Field) Set(i, j, k int, v float32) { f.Data[f.Idx(i, j, k)] = v }

// Add accumulates v at interior point (i,j,k).
func (f *Field) Add(i, j, k int, v float32) { f.Data[f.Idx(i, j, k)] += v }

// StrideX returns the flat-index distance between (i,j,k) and (i+1,j,k).
func (f *Field) StrideX() int { return f.sx }

// StrideY returns the flat-index distance between (i,j,k) and (i,j+1,k).
func (f *Field) StrideY() int { return f.sy }

// TotalDims returns the allocated extents including halos.
func (f *Field) TotalDims() Dims {
	return Dims{f.Nx + 2*f.H, f.Ny + 2*f.H, f.Nz + 2*f.H}
}

// Fill sets every element (interior and halo) to v.
func (f *Field) Fill(v float32) {
	for i := range f.Data {
		f.Data[i] = v
	}
}

// FillInterior sets every interior element to v, leaving halos untouched.
func (f *Field) FillInterior(v float32) {
	for i := 0; i < f.Nx; i++ {
		for j := 0; j < f.Ny; j++ {
			base := f.Idx(i, j, 0)
			row := f.Data[base : base+f.Nz]
			for k := range row {
				row[k] = v
			}
		}
	}
}

// CopyFrom copies src into f. The fields must have identical shape.
func (f *Field) CopyFrom(src *Field) {
	if f.Dims != src.Dims || f.H != src.H {
		panic("grid: CopyFrom shape mismatch")
	}
	copy(f.Data, src.Data)
}

// Clone returns a deep copy of f.
func (f *Field) Clone() *Field {
	g := NewField(f.Dims, f.H)
	copy(g.Data, f.Data)
	return g
}

// Row returns the contiguous z-row at (i,j) as a slice of length Nz.
func (f *Field) Row(i, j int) []float32 {
	base := f.Idx(i, j, 0)
	return f.Data[base : base+f.Nz]
}

// RowWithHalo returns the z-row at (i,j) including z halos, length Nz+2H.
func (f *Field) RowWithHalo(i, j int) []float32 {
	base := f.Idx(i, j, -f.H)
	return f.Data[base : base+f.Nz+2*f.H]
}

// InteriorEqual reports whether the interiors of f and g match to within tol
// (absolute difference).
func (f *Field) InteriorEqual(g *Field, tol float64) bool {
	if f.Dims != g.Dims {
		return false
	}
	for i := 0; i < f.Nx; i++ {
		for j := 0; j < f.Ny; j++ {
			for k := 0; k < f.Nz; k++ {
				if math.Abs(float64(f.At(i, j, k)-g.At(i, j, k))) > tol {
					return false
				}
			}
		}
	}
	return true
}

// MaxAbs returns the maximum absolute interior value.
func (f *Field) MaxAbs() float32 {
	var m float32
	for i := 0; i < f.Nx; i++ {
		for j := 0; j < f.Ny; j++ {
			for _, v := range f.Row(i, j) {
				if v < 0 {
					v = -v
				}
				if v > m {
					m = v
				}
			}
		}
	}
	return m
}

// L2Diff returns the root-mean-square interior difference between f and g.
func (f *Field) L2Diff(g *Field) float64 {
	if f.Dims != g.Dims {
		panic("grid: L2Diff shape mismatch")
	}
	var sum float64
	for i := 0; i < f.Nx; i++ {
		for j := 0; j < f.Ny; j++ {
			fr, gr := f.Row(i, j), g.Row(i, j)
			for k := range fr {
				d := float64(fr[k] - gr[k])
				sum += d * d
			}
		}
	}
	return math.Sqrt(sum / float64(f.Points()))
}

// MinMax returns the minimum and maximum interior values.
func (f *Field) MinMax() (lo, hi float32) {
	lo, hi = math.MaxFloat32, -math.MaxFloat32
	for i := 0; i < f.Nx; i++ {
		for j := 0; j < f.Ny; j++ {
			for _, v := range f.Row(i, j) {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	return lo, hi
}

// Bytes returns the allocated size of the field in bytes.
func (f *Field) Bytes() int64 {
	return int64(len(f.Data)) * 4
}
