// Package output writes simulation products to portable formats: station
// seismograms as CSV, surface fields (PGV, intensity, snapshots) as PGM
// images and ASCII art, all with stdlib only.
package output

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"swquake/internal/atomicio"
	"swquake/internal/seismo"
)

// WriteTraceCSV writes a three-component seismogram as time,u,v,w rows.
func WriteTraceCSV(w io.Writer, t *seismo.Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# station %s (i=%d j=%d k=%d), dt=%g s\n",
		t.Station.Name, t.Station.I, t.Station.J, t.Station.K, t.Dt); err != nil {
		return err
	}
	fmt.Fprintln(bw, "time,u,v,w")
	for i := range t.U {
		fmt.Fprintf(bw, "%.6f,%.6e,%.6e,%.6e\n", float64(i)*t.Dt, t.U[i], t.V[i], t.W[i])
	}
	return bw.Flush()
}

// SaveTraceCSV writes the trace to a file atomically: a crash mid-write
// leaves either the previous file or nothing, never a torn CSV.
func SaveTraceCSV(path string, t *seismo.Trace) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteTraceCSV(w, t)
	})
}

// WritePGM writes a 2D field as an 8-bit PGM image, linearly mapping
// [lo, hi] to [0, 255]. Rows are the first index.
func WritePGM(w io.Writer, field [][]float64, lo, hi float64) error {
	if len(field) == 0 || len(field[0]) == 0 {
		return fmt.Errorf("output: empty field")
	}
	bw := bufio.NewWriter(w)
	h, wd := len(field), len(field[0])
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", wd, h)
	span := hi - lo
	for _, row := range field {
		if len(row) != wd {
			return fmt.Errorf("output: ragged field")
		}
		for _, v := range row {
			p := 0.0
			if span > 0 {
				p = (v - lo) / span
			}
			if p < 0 {
				p = 0
			}
			if p > 1 {
				p = 1
			}
			if err := bw.WriteByte(byte(math.Round(p * 255))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SavePGM writes the field to a .pgm file atomically.
func SavePGM(path string, field [][]float64, lo, hi float64) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WritePGM(w, field, lo, hi)
	})
}

// PGVGrid converts a PGVField into a [][]float64 for image output.
func PGVGrid(p *seismo.PGVField) [][]float64 {
	out := make([][]float64, p.Nx)
	for i := range out {
		row := make([]float64, p.Ny)
		for j := range row {
			row[j] = p.At(i, j)
		}
		out[i] = row
	}
	return out
}

// IntensityGrid converts a PGVField into Chinese intensities.
func IntensityGrid(p *seismo.PGVField) [][]float64 {
	out := PGVGrid(p)
	for _, row := range out {
		for j, v := range row {
			row[j] = seismo.Intensity(v)
		}
	}
	return out
}

// ASCIIMap renders a 2D field as character art with the given shade ramp,
// downsampling to at most maxCols columns.
func ASCIIMap(w io.Writer, field [][]float64, maxCols int) {
	if len(field) == 0 {
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range field {
		for _, v := range row {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	shades := " .:-=+*#%@"
	stepI := max(len(field)/maxCols, 1) * 2 // rows are taller than chars
	stepJ := max(len(field[0])/maxCols, 1)
	for i := 0; i < len(field); i += stepI {
		for j := 0; j < len(field[i]); j += stepJ {
			p := 0.0
			if hi > lo {
				p = (field[i][j] - lo) / (hi - lo)
			}
			fmt.Fprintf(w, "%c", shades[int(p*float64(len(shades)-1))])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "range: [%.4g, %.4g]\n", lo, hi)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WriteSpectrumCSV writes an amplitude spectrum as frequency,amplitude rows.
func WriteSpectrumCSV(w io.Writer, s seismo.Spectrum) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "freq_hz,amplitude")
	for i, a := range s.Amp {
		fmt.Fprintf(bw, "%.6f,%.6e\n", float64(i)*s.Df, a)
	}
	return bw.Flush()
}

// SaveSpectrumCSV writes the spectrum to a file atomically.
func SaveSpectrumCSV(path string, s seismo.Spectrum) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return WriteSpectrumCSV(w, s)
	})
}
