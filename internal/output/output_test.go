package output

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"swquake/internal/seismo"
)

func sampleTrace() *seismo.Trace {
	return &seismo.Trace{
		Station: seismo.Station{Name: "T", I: 1, J: 2, K: 0},
		Dt:      0.01,
		U:       []float32{0, 1, 2},
		V:       []float32{0, -1, -2},
		W:       []float32{0, 0, 0},
	}
}

func TestWriteTraceCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "time,u,v,w") {
		t.Fatal("header missing")
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 2+3 { // comment + header + 3 samples
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[3], "0.010000,") {
		t.Fatalf("time column wrong: %s", lines[3])
	}
}

func TestSaveTraceCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := SaveTraceCSV(path, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "station T") {
		t.Fatal("station comment missing")
	}
}

func TestWritePGM(t *testing.T) {
	field := [][]float64{{0, 0.5}, {1, 2}}
	var buf bytes.Buffer
	if err := WritePGM(&buf, field, 0, 2); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.HasPrefix(b, []byte("P5\n2 2\n255\n")) {
		t.Fatalf("header: %q", b[:12])
	}
	pix := b[len(b)-4:]
	if pix[0] != 0 || pix[3] != 255 {
		t.Fatalf("pixels %v", pix)
	}
	if pix[1] != 64 { // 0.5/2 * 255 = 63.75 -> 64
		t.Fatalf("midpoint pixel %d", pix[1])
	}
}

func TestWritePGMErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, nil, 0, 1); err == nil {
		t.Fatal("empty field accepted")
	}
	if err := WritePGM(&buf, [][]float64{{1, 2}, {3}}, 0, 1); err == nil {
		t.Fatal("ragged field accepted")
	}
}

func TestPGVAndIntensityGrids(t *testing.T) {
	p := seismo.NewPGVField(2, 3, 0)
	p.PGV[0*3+1] = 1.0
	g := PGVGrid(p)
	if len(g) != 2 || len(g[0]) != 3 || g[0][1] != 1 {
		t.Fatalf("grid %v", g)
	}
	ig := IntensityGrid(p)
	if ig[0][1] < 9.7 || ig[0][1] > 9.9 {
		t.Fatalf("intensity %v", ig[0][1])
	}
	if ig[1][2] != 1 {
		t.Fatal("quiet cell intensity must clamp to 1")
	}
}

func TestASCIIMap(t *testing.T) {
	field := make([][]float64, 20)
	for i := range field {
		field[i] = make([]float64, 20)
		field[i][10] = float64(i)
	}
	field[0][10] = 100 // peak on a row the downsampler keeps
	var buf bytes.Buffer
	ASCIIMap(&buf, field, 10)
	s := buf.String()
	if !strings.Contains(s, "range:") {
		t.Fatal("range line missing")
	}
	if !strings.Contains(s, "@") {
		t.Fatal("peak shade missing")
	}
}

func TestWriteSpectrumCSV(t *testing.T) {
	tr := sampleTrace()
	s := tr.HorizontalSpectrum()
	var buf bytes.Buffer
	if err := WriteSpectrumCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "freq_hz,amplitude") {
		t.Fatal("header missing")
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(s.Amp)+1 {
		t.Fatalf("%d lines for %d bins", lines, len(s.Amp))
	}
	path := filepath.Join(t.TempDir(), "s.csv")
	if err := SaveSpectrumCSV(path, s); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
