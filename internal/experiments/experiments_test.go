package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestTable1ByteFlopRatio(t *testing.T) {
	var buf bytes.Buffer
	ratio := Table1(&buf)
	if ratio < 4.5 || ratio > 6.5 {
		t.Fatalf("Titan/TaihuLight byte-to-flop ratio %g, paper says ~5", ratio)
	}
	if !strings.Contains(buf.String(), "TaihuLight") {
		t.Fatal("table text missing")
	}
}

func TestTable2Prints(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	for _, s := range []string{"AWP-ODC", "SeisSol", "15.2/18.9"} {
		if !strings.Contains(buf.String(), s) {
			t.Fatalf("table 2 missing %q", s)
		}
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3(io.Discard)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// spot-check against the paper's measurements
	if rows[0].Get1 != 3.28 || rows[3].Put4 != 133 {
		t.Fatalf("table 3 values drifted: %+v", rows)
	}
	// bandwidth must rise with block size in every column
	for i := 1; i < len(rows); i++ {
		if rows[i].Get4 <= rows[i-1].Get4 || rows[i].Put1 <= rows[i-1].Put1 {
			t.Fatal("table 3 not monotone")
		}
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4(io.Discard)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Effective <= 0 || r.Effective > r.Peak {
			t.Fatalf("row %s out of range", r.Name)
		}
	}
}

func TestFig7Bands(t *testing.T) {
	sp := Fig7(io.Discard)
	if len(sp) < 6 {
		t.Fatalf("only %d kernels", len(sp))
	}
	for _, k := range []string{"delcx", "dstrqc", "drprecpc_calc"} {
		if sp[k]["CMPR"] < 28 || sp[k]["CMPR"] > 50 {
			t.Fatalf("%s final speedup %g out of paper band", k, sp[k]["CMPR"])
		}
	}
	if sp["fstr"]["CMPR"] > 6 {
		t.Fatalf("fstr speedup %g should stay ~4-5", sp["fstr"]["CMPR"])
	}
}

func TestFig8Endpoints(t *testing.T) {
	pts := Fig8(io.Discard)
	last := pts[len(pts)-1]
	if last.Procs != 160000 {
		t.Fatalf("last point at %d procs", last.Procs)
	}
	checks := map[string][2]float64{
		"nonlinear":          {14.0, 16.4},
		"linear":             {9.9, 11.6},
		"nonlinear+compress": {17.4, 20.4},
		"linear+compress":    {13.1, 15.3},
	}
	for name, band := range checks {
		v := last.Pflops[name]
		if v < band[0] || v > band[1] {
			t.Fatalf("%s peak %g Pflops outside paper band %v", name, v, band)
		}
	}
	// who wins: nonlinear+compress > nonlinear > linear+compress > linear
	if !(last.Pflops["nonlinear+compress"] > last.Pflops["nonlinear"] &&
		last.Pflops["nonlinear"] > last.Pflops["linear+compress"] &&
		last.Pflops["linear+compress"] > last.Pflops["linear"]) {
		t.Fatalf("ordering wrong: %+v", last.Pflops)
	}
}

func TestFig9SeriesShape(t *testing.T) {
	series := Fig9(io.Discard)
	if len(series) != 12 { // 3 meshes x 4 cases
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if s.Speedups[8000] != 1 {
			t.Fatalf("%s/%s: baseline speedup %g", s.Case, s.Mesh, s.Speedups[8000])
		}
		if s.Speedups[160000] <= s.Speedups[8000] || s.Speedups[160000] > 20 {
			t.Fatalf("%s/%s: 160K speedup %g", s.Case, s.Mesh, s.Speedups[160000])
		}
	}
}

func TestFig6CompressionValidation(t *testing.T) {
	res, err := Fig6(io.Discard, Quick)
	if err != nil {
		t.Fatal(err)
	}
	// near-fault Ninghe: compressed trace tracks the reference closely
	if m := res.Misfit["Ninghe"]; m <= 0 || m > 0.45 {
		t.Fatalf("Ninghe misfit %g outside (0, 0.45]", m)
	}
	if r := res.PeakRatio["Ninghe"]; r < 0.85 || r > 1.15 {
		t.Fatalf("Ninghe peak ratio %g", r)
	}
	// the paper's qualitative finding: the distant station accumulates more
	// error over the longer propagation path, but remains bounded
	if !(res.Misfit["Cangzhou"] > res.Misfit["Ninghe"]) {
		t.Fatalf("distant station should degrade more: Cangzhou %g vs Ninghe %g",
			res.Misfit["Cangzhou"], res.Misfit["Ninghe"])
	}
	if res.Misfit["Cangzhou"] > 2.5 {
		t.Fatalf("Cangzhou misfit %g unbounded", res.Misfit["Cangzhou"])
	}
	// the multi-band GoF lands in the "fair" range at this (noisy) quick
	// configuration and stays well defined
	if res.GoF["Ninghe"] < 3 || res.GoF["Ninghe"] > 10 {
		t.Fatalf("Ninghe GoF %g outside the expected fair band", res.GoF["Ninghe"])
	}
}

func TestFig10Rupture(t *testing.T) {
	var buf bytes.Buffer
	res, err := Fig10(&buf, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.RupturedFraction < 0.3 {
		t.Fatalf("rupture fraction %g", res.RupturedFraction)
	}
	if res.RuptureSpeed <= 0 || res.RuptureSpeed >= 5000 {
		t.Fatalf("rupture speed %g", res.RuptureSpeed)
	}
	if res.SourceCount == 0 || res.SeismicMoment <= 0 {
		t.Fatalf("no output: %+v", res)
	}
	if !strings.Contains(buf.String(), "slip-rate snapshot") {
		t.Fatal("snapshot missing")
	}
}

func TestFig11Resolution(t *testing.T) {
	res, err := Fig11(io.Discard, Quick)
	if err != nil {
		t.Fatal(err)
	}
	// the fine run must carry more high-frequency content at the basin
	// station (the paper's central claim for high resolution), by both the
	// time-derivative proxy and the spectral measure
	if res.FineRoughness["Ninghe"] <= res.CoarseRoughness["Ninghe"] {
		t.Fatalf("fine run not richer at Ninghe: %g vs %g",
			res.FineRoughness["Ninghe"], res.CoarseRoughness["Ninghe"])
	}
	if res.HFFractionFine["Ninghe"] <= res.HFFractionCoarse["Ninghe"] {
		t.Fatalf("fine run spectrum not richer above %g Hz: %g vs %g",
			res.HFCut, res.HFFractionFine["Ninghe"], res.HFFractionCoarse["Ninghe"])
	}
	// hazard maps must differ somewhere, but not everywhere
	if res.IntensityChanged <= 0 || res.IntensityChanged > 0.9 {
		t.Fatalf("intensity changed fraction %g", res.IntensityChanged)
	}
	if res.MaxIntensityFine <= 1 || res.MaxIntensityCoarse <= 1 {
		t.Fatal("degenerate hazard maps")
	}
	// the paper's Fig. 11a claim: at coarse resolution even the main pulse
	// is wrong at the basin station — the misfit is large, not subtle
	if res.FullBandMisfit["Ninghe"] < 0.3 {
		t.Fatalf("coarse run suspiciously close to fine: %g", res.FullBandMisfit["Ninghe"])
	}
}

func TestCapability(t *testing.T) {
	var buf bytes.Buffer
	e := Capability(&buf)
	if !e.FitsMemory() {
		t.Fatal("extreme case must fit with compression")
	}
	if !strings.Contains(buf.String(), "time to solution") {
		t.Fatal("capability output incomplete")
	}
}

func TestBaselineComparison(t *testing.T) {
	var buf bytes.Buffer
	titan, taihu := Baseline(&buf)
	if !(taihu > titan) {
		t.Fatalf("headline claim fails: taihu %g <= titan %g", taihu, titan)
	}
	if !strings.Contains(buf.String(), "Titan") {
		t.Fatal("baseline output incomplete")
	}
}

func TestFig11Ladder(t *testing.T) {
	pts, err := Fig11Ladder(io.Discard, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d rungs", len(pts))
	}
	// spacing halves down the ladder
	if !(pts[0].Dx > pts[1].Dx && pts[1].Dx > pts[2].Dx) {
		t.Fatalf("ladder not refining: %v", pts)
	}
	// high-frequency content must grow monotonically with refinement
	if !(pts[2].NingheHF > pts[1].NingheHF && pts[1].NingheHF > pts[0].NingheHF) {
		t.Fatalf("HF content not monotone: %.3f %.3f %.3f",
			pts[0].NingheHF, pts[1].NingheHF, pts[2].NingheHF)
	}
	// and the PGV grows as the basin response is resolved
	if !(pts[2].NinghePGV > pts[0].NinghePGV) {
		t.Fatalf("PGV did not grow with resolution: %g -> %g", pts[0].NinghePGV, pts[2].NinghePGV)
	}
}
