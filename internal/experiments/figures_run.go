package experiments

import (
	"fmt"
	"io"
	"math"

	"swquake/internal/compress"
	"swquake/internal/core"
	"swquake/internal/fd"
	"swquake/internal/grid"
	"swquake/internal/model"
	"swquake/internal/rupture"
	"swquake/internal/scenario"
	"swquake/internal/seismo"
)

// Size selects how big the run-based experiments are.
type Size int

const (
	// Quick runs in a couple of seconds (used by tests and benchmarks).
	Quick Size = iota
	// Full runs the larger meshes the example binaries default to.
	Full
)

func (s Size) tangshan(nonlinear bool) scenario.Tangshan {
	if s == Full {
		return scenario.Tangshan{
			Dims: grid.Dims{Nx: 80, Ny: 78, Nz: 28}, Dx: 400, Steps: 400, Nonlinear: nonlinear,
		}
	}
	return scenario.Tangshan{
		Dims: grid.Dims{Nx: 40, Ny: 39, Nz: 16}, Dx: 800, Steps: 120, Nonlinear: nonlinear,
	}
}

// Fig6Result reports the compression-validation comparison.
type Fig6Result struct {
	// Misfit is the relative RMS misfit of the compressed seismogram per
	// station (paper Fig. 6 shows near-overlap with small coda error).
	Misfit map[string]float64
	// PeakRatio is compressed/uncompressed peak velocity per station.
	PeakRatio map[string]float64
	// GoF is the Anderson-style multi-band goodness-of-fit score (0-10).
	GoF map[string]float64
}

// Fig6 runs the Tangshan scenario with and without on-the-fly compression
// (method 3, range-normalized, calibrated on a coarse run) and compares
// the Ninghe and Cangzhou seismograms — the paper's Fig. 6 validation.
func Fig6(w io.Writer, size Size) (*Fig6Result, error) {
	sc := size.tangshan(false)
	cfg, err := sc.Config()
	if err != nil {
		return nil, err
	}

	ref, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	refRes, err := ref.Run()
	if err != nil {
		return nil, err
	}

	stats, err := core.CalibrateCompression(cfg, 2)
	if err != nil {
		return nil, err
	}
	ccfg := cfg
	ccfg.Compression = core.CompressionConfig{Method: compress.Normalized, Stats: stats, Expand: 1.5}
	csim, err := core.New(ccfg)
	if err != nil {
		return nil, err
	}
	csim.Cfg.Dt = ref.Cfg.Dt
	compRes, err := csim.Run()
	if err != nil {
		return nil, err
	}

	out := &Fig6Result{Misfit: map[string]float64{}, PeakRatio: map[string]float64{}, GoF: map[string]float64{}}
	fmt.Fprintln(w, "Fig 6: compression validation (base vs compressed seismograms)")
	fmt.Fprintf(w, "%-10s %14s %14s %14s %10s\n", "station", "peak base", "peak compr", "RMS misfit", "GoF(0-10)")
	for _, st := range []string{"Ninghe", "Cangzhou"} {
		a := refRes.Recorder.Trace(st)
		b := compRes.Recorder.Trace(st)
		mis, err := a.RMSMisfit(b)
		if err != nil {
			return nil, err
		}
		pa, pb := a.PeakVelocity(), b.PeakVelocity()
		ratio := 0.0
		if pa > 0 {
			ratio = pb / pa
		}
		out.Misfit[st] = mis
		out.PeakRatio[st] = ratio
		nyq := 0.5 / a.Dt
		gof := a.GoodnessOfFit(b, seismo.StandardBands(nyq*0.8))
		out.GoF[st] = gof.Total
		fmt.Fprintf(w, "%-10s %14.5g %14.5g %13.1f%% %10.1f\n", st, pa, pb, 100*mis, gof.Total)
	}
	fmt.Fprintln(w, "(paper: sharp onsets match; coda degrades slightly, more at the distant station)")
	return out, nil
}

// Fig10Result reports the dynamic rupture run.
type Fig10Result struct {
	RupturedFraction float64
	MaxSlip          float64
	SeismicMoment    float64
	Mw               float64
	RuptureSpeed     float64
	SourceCount      int
}

// Fig10 runs the Tangshan-like non-planar dynamic rupture (paper Fig. 10b)
// and prints an ASCII snapshot of the absolute slip rate on the fault.
func Fig10(w io.Writer, size Size) (*Fig10Result, error) {
	d := grid.Dims{Nx: 48, Ny: 24, Nz: 24}
	dx := 100.0
	steps := 200
	if size == Full {
		d = grid.Dims{Nx: 96, Ny: 40, Nz: 40}
		dx = 75
		steps = 500
	}
	mat := model.Material{Vp: 5000, Vs: 2887, Rho: 2700}
	med := fd.NewMedium(d)
	lam, mu := mat.Lame()
	med.Rho.Fill(float32(mat.Rho))
	med.Lam.Fill(float32(lam))
	med.Mu.Fill(float32(mu))

	cfg := rupture.TangshanConfig(d, dx)
	dt := 0.8 * model.CFLTimeStep(dx, mat.Vp)
	res, err := rupture.Simulate(cfg, med, dx, dt, steps)
	if err != nil {
		return nil, err
	}

	out := &Fig10Result{
		RupturedFraction: res.RupturedFraction(),
		MaxSlip:          res.MaxFinalSlip(),
		SeismicMoment:    res.SeismicMoment(med),
	}
	out.Mw = 2.0/3.0*math.Log10(out.SeismicMoment) - 6.07
	out.RuptureSpeed = res.RuptureSpeed(cfg.I1 - 3)
	out.SourceCount = len(res.Sources(med, 2))

	fmt.Fprintln(w, "Fig 10: Tangshan-like dynamic rupture on a non-planar fault")
	fmt.Fprintf(w, "ruptured fraction  %6.1f%%\n", 100*out.RupturedFraction)
	fmt.Fprintf(w, "max slip           %6.2f m\n", out.MaxSlip)
	fmt.Fprintf(w, "seismic moment     %.3g N*m (Mw %.2f at this scale)\n", out.SeismicMoment, out.Mw)
	fmt.Fprintf(w, "rupture speed      %6.0f m/s (Vs = %.0f, Vp = %.0f)\n", out.RuptureSpeed, mat.Vs, mat.Vp)
	fmt.Fprintf(w, "emitted sources    %d\n", out.SourceCount)

	// ASCII snapshot of |slip rate| midway through the run (Fig. 10b look)
	snapStep := steps * 2 / 5
	snap := res.SlipRateSnapshot(snapStep)
	var vmax float64
	for _, row := range snap {
		for _, v := range row {
			if v > vmax {
				vmax = v
			}
		}
	}
	fmt.Fprintf(w, "slip-rate snapshot at step %d (strike -> right, depth -> down, max %.2f m/s):\n", snapStep, vmax)
	shades := " .:-=+*#%@"
	if vmax > 0 {
		nk := len(snap[0])
		for sk := 0; sk < nk; sk += maxInt(nk/12, 1) {
			for si := 0; si < len(snap); si += maxInt(len(snap)/64, 1) {
				lvl := int(snap[si][sk] / vmax * float64(len(shades)-1))
				fmt.Fprintf(w, "%c", shades[lvl])
			}
			fmt.Fprintln(w)
		}
	}
	return out, nil
}

// Fig11Result reports the resolution comparison.
type Fig11Result struct {
	// PGV per station at the two resolutions.
	CoarsePGV, FinePGV map[string]float64
	// Roughness is the high-frequency content proxy (RMS of the velocity
	// time-derivative) per station; the fine run must carry more.
	CoarseRoughness, FineRoughness map[string]float64
	// HFFractionCoarse/Fine is the spectral energy fraction above HFCut Hz
	// (a real DFT measure of the coda richness of Fig. 11a-b).
	HFFractionCoarse, HFFractionFine map[string]float64
	// HFCut is the frequency split used.
	HFCut float64
	// LowBandMisfit (0.2-0.8 Hz) and FullBandMisfit are RMS misfits between
	// the coarse and fine runs per station. Both are LARGE: at 800 m the
	// coarse grid underresolves the whole source band (the basin carries
	// Vs = 600 m/s), so even the main pulse is wrong — the paper's Fig. 11a
	// finding that "the main-peak of the earthquake cannot even be
	// calculated accurately" on coarse grids.
	LowBandMisfit, FullBandMisfit map[string]float64
	// IntensityChanged is the fraction of surface cells whose Chinese
	// intensity differs by >= 0.5 between resolutions.
	IntensityChanged float64
	// MaxIntensityCoarse/Fine are the hazard-map maxima.
	MaxIntensityCoarse, MaxIntensityFine float64
}

// Fig11 runs the Tangshan scenario at two resolutions over the same
// physical domain and simulated duration, comparing seismograms, PGV and
// the intensity hazard map (paper Fig. 11).
func Fig11(w io.Writer, size Size) (*Fig11Result, error) {
	coarseSc := size.tangshan(true)
	fineSc := coarseSc
	fineSc.Dims = grid.Dims{Nx: coarseSc.Dims.Nx * 2, Ny: coarseSc.Dims.Ny * 2, Nz: coarseSc.Dims.Nz * 2}
	fineSc.Dx = coarseSc.Dx / 2
	fineSc.Steps = coarseSc.Steps * 2

	run := func(sc scenario.Tangshan) (*core.Result, error) {
		cfg, err := sc.Config()
		if err != nil {
			return nil, err
		}
		sim, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		return sim.Run()
	}
	coarse, err := run(coarseSc)
	if err != nil {
		return nil, err
	}
	fine, err := run(fineSc)
	if err != nil {
		return nil, err
	}

	out := &Fig11Result{
		CoarsePGV: map[string]float64{}, FinePGV: map[string]float64{},
		CoarseRoughness: map[string]float64{}, FineRoughness: map[string]float64{},
		HFFractionCoarse: map[string]float64{}, HFFractionFine: map[string]float64{},
		HFCut:         2.0,
		LowBandMisfit: map[string]float64{}, FullBandMisfit: map[string]float64{},
	}
	fmt.Fprintf(w, "Fig 11: resolution comparison (dx = %.0f m vs %.0f m, same physical domain)\n",
		coarseSc.Dx, fineSc.Dx)
	fmt.Fprintf(w, "%-10s %12s %12s %14s %14s %10s %10s\n", "station", "PGV coarse", "PGV fine",
		"dv/dt crs", "dv/dt fine", ">2Hz crs", ">2Hz fine")
	for _, st := range []string{"Ninghe", "Cangzhou", "Beijing"} {
		a := coarse.Recorder.Trace(st)
		b := fine.Recorder.Trace(st)
		out.CoarsePGV[st] = a.PeakVelocity()
		out.FinePGV[st] = b.PeakVelocity()
		out.CoarseRoughness[st] = roughness(a)
		out.FineRoughness[st] = roughness(b)
		out.HFFractionCoarse[st] = a.HorizontalSpectrum().EnergyAbove(out.HFCut)
		out.HFFractionFine[st] = b.HorizontalSpectrum().EnergyAbove(out.HFCut)
		if m, err := a.BandlimitedMisfit(b, 0.2, 0.8); err == nil {
			out.LowBandMisfit[st] = m
		}
		if rs, err := b.Resample(a.Dt); err == nil {
			n := len(a.U)
			if len(rs.U) < n {
				n = len(rs.U)
			}
			ta := &seismo.Trace{Dt: a.Dt, U: a.U[:n], V: a.V[:n], W: a.W[:n]}
			tb := &seismo.Trace{Dt: a.Dt, U: rs.U[:n], V: rs.V[:n], W: rs.W[:n]}
			if m, err := ta.RMSMisfit(tb); err == nil {
				out.FullBandMisfit[st] = m
			}
		}
		fmt.Fprintf(w, "%-10s %12.4g %12.4g %14.4g %14.4g %9.1f%% %9.1f%%\n", st,
			out.CoarsePGV[st], out.FinePGV[st], out.CoarseRoughness[st], out.FineRoughness[st],
			100*out.HFFractionCoarse[st], 100*out.HFFractionFine[st])
	}

	// hazard maps: compare intensity on the coarse surface grid (fine map
	// downsampled 2x)
	changed, n := 0, 0
	for i := 0; i < coarseSc.Dims.Nx; i++ {
		for j := 0; j < coarseSc.Dims.Ny; j++ {
			ic := seismo.Intensity(coarse.PGV.At(i, j))
			fi := seismo.Intensity(fine.PGV.At(2*i, 2*j))
			if ic > out.MaxIntensityCoarse {
				out.MaxIntensityCoarse = ic
			}
			if fi > out.MaxIntensityFine {
				out.MaxIntensityFine = fi
			}
			if math.Abs(ic-fi) >= 0.5 {
				changed++
			}
			n++
		}
	}
	out.IntensityChanged = float64(changed) / float64(n)
	for _, st := range []string{"Ninghe", "Cangzhou", "Beijing"} {
		fmt.Fprintf(w, "%-10s coarse-vs-fine misfit: %5.0f%% in 0.2-0.8 Hz, %5.0f%% full band (coarse is wrong even at low f)\n",
			st, 100*out.LowBandMisfit[st], 100*out.FullBandMisfit[st])
	}
	fmt.Fprintf(w, "hazard map: max intensity %.1f (coarse) vs %.1f (fine); %.0f%% of cells differ by >= 0.5\n",
		out.MaxIntensityCoarse, out.MaxIntensityFine, 100*out.IntensityChanged)
	fmt.Fprintln(w, "(paper: low resolution misses basin coda and redistributes intensity, e.g. Wuqing 6 -> 7)")
	return out, nil
}

// roughness is the RMS time-derivative of the horizontal velocity — a
// proxy for high-frequency content (the coda richness of Fig. 11a-b).
func roughness(t *seismo.Trace) float64 {
	if len(t.U) < 2 {
		return 0
	}
	var sum float64
	for i := 1; i < len(t.U); i++ {
		du := float64(t.U[i]-t.U[i-1]) / t.Dt
		dv := float64(t.V[i]-t.V[i-1]) / t.Dt
		sum += du*du + dv*dv
	}
	return math.Sqrt(sum / float64(len(t.U)-1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LadderPoint is one rung of the resolution ladder.
type LadderPoint struct {
	Dx        float64
	NinghePGV float64
	NingheHF  float64 // spectral energy fraction above 2 Hz
}

// Fig11Ladder extends the two-point comparison of Fig11 to a three-rung
// resolution ladder (the paper sweeps 500 m down to 8 m): each halving of
// the grid spacing must monotonically enrich the basin station's motion.
func Fig11Ladder(w io.Writer, size Size) ([]LadderPoint, error) {
	base := size.tangshan(true)
	var out []LadderPoint
	fmt.Fprintln(w, "Fig 11 ladder: resolution sweep at the basin station (Ninghe)")
	fmt.Fprintf(w, "%10s %14s %12s\n", "dx (m)", "PGV (m/s)", ">2Hz energy")
	for rung := 0; rung < 3; rung++ {
		scale := 1 << (2 - rung) // 4, 2, 1 -> coarsest first
		sc := base
		sc.Dims = grid.Dims{Nx: base.Dims.Nx * 2 / scale, Ny: base.Dims.Ny * 2 / scale, Nz: base.Dims.Nz * 2 / scale}
		sc.Dx = base.Dx * float64(scale) / 2
		sc.Steps = base.Steps * 2 / scale
		cfg, err := sc.Config()
		if err != nil {
			return nil, err
		}
		sim, err := core.New(cfg)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run()
		if err != nil {
			return nil, err
		}
		tr := res.Recorder.Trace("Ninghe")
		p := LadderPoint{
			Dx:        sc.Dx,
			NinghePGV: tr.PeakVelocity(),
			NingheHF:  tr.HorizontalSpectrum().EnergyAbove(2),
		}
		out = append(out, p)
		fmt.Fprintf(w, "%10.0f %14.4g %11.1f%%\n", p.Dx, p.NinghePGV, 100*p.NingheHF)
	}
	fmt.Fprintln(w, "(paper: each refinement from 500 m toward 8 m adds coda and changes the hazard map)")
	return out, nil
}
