package experiments

import (
	"fmt"
	"io"

	"swquake/internal/compress"
	"swquake/internal/core"
	"swquake/internal/ldm"
	"swquake/internal/sunway"
)

// Ablations for the design choices DESIGN.md calls out. These are not
// paper figures but quantify the individual decisions the paper's §6
// bundles together.

// AblationFusionResult quantifies array fusion through the blocking model.
type AblationFusionResult struct {
	UnfusedBW, FusedBW       float64 // effective GB/s per CG
	UnfusedBlock, FusedBlock int     // max DMA chunk bytes
	UnfusedWz, FusedWz       int
	PredictedSpeedup         float64 // ratio of predicted DMA times
}

// AblationFusion runs the LDM model with and without the vec3/vec6 fusion
// (paper §6.4, eqs. 8-9).
func AblationFusion(w io.Writer) (*AblationFusionResult, error) {
	unfused, err := ldm.Optimize(ldm.DelcUnfused(), 160, 512, sunway.LDMBytes)
	if err != nil {
		return nil, err
	}
	fused, err := ldm.Optimize(ldm.DelcFused(), 160, 512, sunway.LDMBytes)
	if err != nil {
		return nil, err
	}
	res := &AblationFusionResult{
		UnfusedBW: unfused.EffBWGBs, FusedBW: fused.EffBWGBs,
		UnfusedBlock: unfused.BlockBytesMax, FusedBlock: fused.BlockBytesMax,
		UnfusedWz: unfused.Wz, FusedWz: fused.Wz,
		PredictedSpeedup: unfused.PredictedTime / fused.PredictedTime,
	}
	fmt.Fprintln(w, "Ablation: array fusion (paper §6.4)")
	fmt.Fprintf(w, "%-10s %8s %10s %12s\n", "layout", "Wz", "block(B)", "eff BW GB/s")
	fmt.Fprintf(w, "%-10s %8d %10d %12.1f\n", "unfused", res.UnfusedWz, res.UnfusedBlock, res.UnfusedBW)
	fmt.Fprintf(w, "%-10s %8d %10d %12.1f\n", "fused", res.FusedWz, res.FusedBlock, res.FusedBW)
	fmt.Fprintf(w, "predicted DMA speedup %.2fx (paper: up to 4x on the hottest kernels)\n", res.PredictedSpeedup)
	return res, nil
}

// AblationMethodResult is one row of the codec comparison.
type AblationMethodResult struct {
	Method   compress.Method
	Misfit   float64 // RMS misfit at Ninghe vs uncompressed
	Diverged bool
}

// AblationCompressionMethods runs the Tangshan scenario under each of the
// three 16-bit codecs (paper Fig. 5d) and reports the accuracy ordering —
// including method 1's characteristic overflow failure when stresses
// exceed the binary16 range.
func AblationCompressionMethods(w io.Writer, size Size) ([]AblationMethodResult, error) {
	sc := size.tangshan(false)
	cfg, err := sc.Config()
	if err != nil {
		return nil, err
	}
	ref, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	refRes, err := ref.Run()
	if err != nil {
		return nil, err
	}
	stats, err := core.CalibrateCompression(cfg, 2)
	if err != nil {
		return nil, err
	}

	fmt.Fprintln(w, "Ablation: compression methods (paper Fig. 5d)")
	fmt.Fprintf(w, "%-12s %14s %10s\n", "method", "Ninghe misfit", "stable")
	var out []AblationMethodResult
	for _, m := range []compress.Method{compress.Half, compress.Adaptive, compress.Normalized} {
		ccfg := cfg
		ccfg.Compression = core.CompressionConfig{Method: m, Stats: stats}
		csim, err := core.New(ccfg)
		if err != nil {
			return nil, err
		}
		csim.Cfg.Dt = ref.Cfg.Dt
		row := AblationMethodResult{Method: m}
		res, err := csim.Run()
		if err != nil {
			row.Diverged = true
		} else {
			row.Misfit, err = refRes.Recorder.Trace("Ninghe").RMSMisfit(res.Recorder.Trace("Ninghe"))
			if err != nil {
				return nil, err
			}
		}
		out = append(out, row)
		if row.Diverged {
			fmt.Fprintf(w, "%-12s %14s %10s\n", m, "-", "DIVERGED (5-bit exponent overflow, §6.5)")
		} else {
			fmt.Fprintf(w, "%-12s %13.1f%% %10s\n", m, 100*row.Misfit, "yes")
		}
	}
	return out, nil
}
