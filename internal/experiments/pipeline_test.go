package experiments

import (
	"testing"

	"swquake/internal/compress"
	"swquake/internal/core"
	"swquake/internal/fd"
	"swquake/internal/grid"
	"swquake/internal/model"
	"swquake/internal/rupture"
	"swquake/internal/scenario"
	"swquake/internal/seismo"
)

// TestCompleteCycle is the capstone integration test: the paper's full
// workflow (Fig. 3) — dynamic rupture source generation, source remapping,
// nonlinear ground motion with on-the-fly compressed storage, and hazard
// extraction — runs end to end and produces physically coherent output.
func TestCompleteCycle(t *testing.T) {
	// stage 1: dynamic rupture on the non-planar Tangshan-like fault
	rupDims := grid.Dims{Nx: 48, Ny: 24, Nz: 24}
	rupDx := 100.0
	mat := model.Material{Vp: 5000, Vs: 2887, Rho: 2700}
	med := fd.NewMedium(rupDims)
	lam, mu := mat.Lame()
	med.Rho.Fill(float32(mat.Rho))
	med.Lam.Fill(float32(lam))
	med.Mu.Fill(float32(mu))

	rcfg := rupture.TangshanConfig(rupDims, rupDx)
	dt := 0.8 * model.CFLTimeStep(rupDx, mat.Vp)
	rres, err := rupture.Simulate(rcfg, med, rupDx, dt, 200)
	if err != nil {
		t.Fatal(err)
	}
	if rres.RupturedFraction() < 0.3 {
		t.Fatalf("rupture failed: %g", rres.RupturedFraction())
	}

	// stage 2: remap the dynamic sources onto the regional mesh
	sc := scenario.Tangshan{
		Dims: grid.Dims{Nx: 40, Ny: 39, Nz: 16}, Dx: 800, Steps: 100, Nonlinear: true,
	}
	cfg, err := sc.Config()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sources = rres.SourcesOnGrid(med, 2, cfg.Dims, cfg.Dx)
	if len(cfg.Sources) == 0 {
		t.Fatal("no remapped sources")
	}

	// stage 3: compressed nonlinear ground motion
	stats, err := core.CalibrateCompression(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Compression = core.CompressionConfig{Method: compress.Normalized, Stats: stats}
	sim, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}

	// stage 4: hazard coherence — the basin station shakes hardest, the
	// map has structure, and the products are finite
	nin := res.Recorder.Trace("Ninghe").PeakVelocity()
	can := res.Recorder.Trace("Cangzhou").PeakVelocity()
	if !(nin > 0 && can > 0) {
		t.Fatal("stations silent")
	}
	if !(nin > can) {
		t.Fatalf("near-fault basin station %g not above distant %g", nin, can)
	}
	if res.PGV.Max() <= 0 || seismo.Intensity(res.PGV.Max()) <= 1 {
		t.Fatal("degenerate hazard map")
	}
	rs := res.Recorder.Trace("Ninghe").ComputeResponseSpectrum([]float64{0.5, 1, 2}, 0.05)
	for i, v := range rs.PSA {
		if v <= 0 || v != v {
			t.Fatalf("PSA[%d] = %g", i, v)
		}
	}
}
