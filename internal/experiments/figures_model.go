package experiments

import (
	"fmt"
	"io"
	"sort"

	"swquake/internal/perfmodel"
)

// Fig7 prints the kernel optimization ladder (speedups over the MPE
// baseline and achieved DMA bandwidth) and returns speedups by kernel and
// strategy.
func Fig7(w io.Writer) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	fmt.Fprintln(w, "Fig 7 (top): kernel speedup over MPE baseline")
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s\n", "kernel", "MPE", "PAR", "MEM", "CMPR")
	for _, k := range perfmodel.Fig7Kernels() {
		m := map[string]float64{}
		fmt.Fprintf(w, "%-16s", k.Name)
		for _, s := range perfmodel.Strategies {
			sp := k.Speedup(s)
			m[s.String()] = sp
			fmt.Fprintf(w, " %8.1f", sp)
		}
		fmt.Fprintln(w)
		out[k.Name] = m
	}
	fmt.Fprintln(w, "\nFig 7 (bottom): achieved DMA bandwidth, GB/s (of 34 peak)")
	fmt.Fprintf(w, "%-16s %8s %8s %8s\n", "kernel", "PAR", "MEM", "CMPR")
	for _, k := range perfmodel.Fig7Kernels() {
		fmt.Fprintf(w, "%-16s %8.1f %8.1f %8.1f\n", k.Name,
			k.AchievedBandwidth(perfmodel.PAR),
			k.AchievedBandwidth(perfmodel.MEM),
			k.AchievedBandwidth(perfmodel.CMPR))
	}
	return out
}

// Fig8Point is one weak-scaling sample.
type Fig8Point struct {
	Procs  int
	Pflops map[string]float64
}

// Fig8 prints the weak-scaling series (8K -> 160K processes, per-CG block
// 160x160x512) for the four cases and returns the points.
func Fig8(w io.Writer) []Fig8Point {
	procsList := []int{8000, 12000, 16000, 24000, 32000, 40000, 48000, 64000, 80000, 96000, 120000, 160000}
	cases := []perfmodel.Case{
		{},
		{Nonlinear: true},
		{Compressed: true},
		{Nonlinear: true, Compressed: true},
	}
	fmt.Fprintln(w, "Fig 8: weak scaling, sustained Pflops (per-CG block 160x160x512)")
	fmt.Fprintf(w, "%8s", "procs")
	for _, c := range cases {
		fmt.Fprintf(w, " %22s", c.String())
	}
	fmt.Fprintln(w)
	var out []Fig8Point
	for _, p := range procsList {
		pt := Fig8Point{Procs: p, Pflops: map[string]float64{}}
		fmt.Fprintf(w, "%8d", p)
		for _, c := range cases {
			v := perfmodel.WeakScalingPoint(c, p, perfmodel.PaperWeakBlock)
			pt.Pflops[c.String()] = v
			fmt.Fprintf(w, " %22.2f", v)
		}
		fmt.Fprintln(w)
		out = append(out, pt)
	}
	for _, c := range cases {
		fmt.Fprintf(w, "peak %-22s %6.1f Pflops (efficiency %.1f%%)\n",
			c.String(),
			perfmodel.WeakScalingPoint(c, 160000, perfmodel.PaperWeakBlock),
			100*perfmodel.WeakEfficiency(c, 160000))
	}
	return out
}

// Fig9Series is one strong-scaling curve.
type Fig9Series struct {
	Mesh     string
	Case     string
	Speedups map[int]float64 // procs -> speedup vs 8000
}

// Fig9 prints the strong-scaling curves for the three mesh sizes in the
// four cases and returns the series.
func Fig9(w io.Writer) []Fig9Series {
	procsList := []int{8000, 12000, 16000, 24000, 32000, 48000, 64000, 80000, 100000, 128000, 160000}
	meshes := perfmodel.PaperStrongMeshes()
	names := make([]string, 0, len(meshes))
	for n := range meshes {
		names = append(names, n)
	}
	sort.Strings(names)
	cases := []perfmodel.Case{
		{},
		{Nonlinear: true},
		{Compressed: true},
		{Nonlinear: true, Compressed: true},
	}
	var out []Fig9Series
	for _, c := range cases {
		fmt.Fprintf(w, "Fig 9 panel: %s (speedup vs 8,000 procs; ideal at 160K = 20.0)\n", c.String())
		fmt.Fprintf(w, "%8s", "procs")
		for _, n := range names {
			fmt.Fprintf(w, " %10s", n)
		}
		fmt.Fprintln(w)
		series := map[string]*Fig9Series{}
		for _, n := range names {
			s := &Fig9Series{Mesh: n, Case: c.String(), Speedups: map[int]float64{}}
			series[n] = s
		}
		for _, p := range procsList {
			fmt.Fprintf(w, "%8d", p)
			for _, n := range names {
				sp := perfmodel.StrongSpeedup(c, meshes[n], 8000, p)
				series[n].Speedups[p] = sp
				fmt.Fprintf(w, " %10.2f", sp)
			}
			fmt.Fprintln(w)
		}
		for _, n := range names {
			fmt.Fprintf(w, "  %-10s 160K efficiency %.1f%%\n", n,
				100*perfmodel.StrongEfficiency(c, meshes[n], 8000, 160000))
			out = append(out, *series[n])
		}
	}
	return out
}
