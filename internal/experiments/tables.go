// Package experiments regenerates every table and figure of the paper's
// evaluation. Table 1 and 2 are reference data printed for context;
// Table 3, Table 4 and Figs. 7-9 come from the calibrated machine and
// performance models driven by the same analytic inputs the paper uses;
// Figs. 6, 10 and 11 are produced by actually running the solver (at
// laptop scale). Each function writes the rows/series the paper reports
// and returns the key numbers so tests and EXPERIMENTS.md can assert the
// shape of the result.
package experiments

import (
	"fmt"
	"io"

	"swquake/internal/perfmodel"
	"swquake/internal/sunway"
)

// Table1 prints the leadership-system comparison (paper Table 1) and
// returns TaihuLight's byte-to-flop disadvantage vs Titan.
func Table1(w io.Writer) float64 {
	type sys struct {
		name                      string
		peak, linpack, mem, memBW float64
	}
	systems := []sys{
		{"TaihuLight", 125, 93, 1310, 4473},
		{"Tianhe-2", 54.9, 33.9, 1375, 10312},
		{"Piz Daint", 25.3, 19.6, 425.6, 4256},
		{"Titan", 27.1, 17.6, 710, 5475},
		{"Sequoia", 20.1, 17.2, 1572, 4188},
		{"K", 11.28, 10.51, 1410, 5640},
	}
	fmt.Fprintf(w, "Table 1: leadership system comparison\n")
	fmt.Fprintf(w, "%-12s %8s %8s %8s %10s %12s\n", "system", "peak", "linpack", "mem(TB)", "BW(TB/s)", "byte/flop")
	var taihu, titan float64
	for _, s := range systems {
		bpf := s.memBW / 1000 / s.peak
		fmt.Fprintf(w, "%-12s %8.2f %8.2f %8.1f %10.0f %12.3f\n",
			s.name, s.peak, s.linpack, s.mem, s.memBW, bpf)
		switch s.name {
		case "TaihuLight":
			taihu = bpf
		case "Titan":
			titan = bpf
		}
	}
	ratio := titan / taihu
	fmt.Fprintf(w, "TaihuLight byte-to-flop is 1/%.1f of Titan's (paper: ~1/5)\n", ratio)
	return ratio
}

// Table2 prints the prior-work summary (paper Table 2, static context).
func Table2(w io.Writer) {
	fmt.Fprintln(w, "Table 2: prior large-scale earthquake simulations (from the paper)")
	rows := []string{
		"1996  Cray T3D      256 procs      8 Gflops   FD",
		"2003  EarthSim      1,944 procs    5 Tflops   SEM   (SPECFEM3D)",
		"2008  Ranger/Jaguar 32K/29K cores  29/36 Tf   SEM",
		"2012  Cray XK6      896 GPUs       135 Tflops SEM",
		"2014  Tianhe-2      1.4M cores     8.6 Pflops DG-FEM (SeisSol)",
		"2017  Cori-II       612K cores     10.4 Pflops DG-FEM (EDGE)",
		"2014  K computer    663K cores     0.80 Pflops iFEM  (GAMERA)",
		"2015  K computer    663K cores     1.97 Pflops iFEM  (GOJIRA)",
		"2010  Jaguar        223K cores     220 Tflops FD     (AWP-ODC linear)",
		"2013  Titan         16,384 GPUs    2.33 Pflops FD    (AWP linear)",
		"2016  Titan         8,192 GPUs     1.6 Pflops  FD    (AWP nonlinear)",
		"2017  TaihuLight    10.6M cores    15.2/18.9 Pflops FD nonlinear (this work)",
	}
	for _, r := range rows {
		fmt.Fprintln(w, r)
	}
}

// Table3Row is one row of the DMA bandwidth table.
type Table3Row struct {
	BlockBytes             int
	Get1, Get4, Put1, Put4 float64
}

// Table3 prints the DMA bandwidths for the paper's block sizes plus the
// fused-array sizes the optimization targets, and returns the rows.
func Table3(w io.Writer) []Table3Row {
	fmt.Fprintln(w, "Table 3: measured DMA bandwidth (GB/s) vs block size")
	fmt.Fprintf(w, "%10s %10s %10s %10s %10s\n", "block(B)", "get 1CG", "get 4CG", "put 1CG", "put 4CG")
	var rows []Table3Row
	for _, b := range []int{32, 128, 512, 2048} {
		r := Table3Row{
			BlockBytes: b,
			Get1:       sunway.DMABandwidth(b, sunway.DMAGet, false),
			Get4:       sunway.DMABandwidth(b, sunway.DMAGet, true),
			Put1:       sunway.DMABandwidth(b, sunway.DMAPut, false),
			Put4:       sunway.DMABandwidth(b, sunway.DMAPut, true),
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%10d %10.2f %10.2f %10.2f %10.2f\n", r.BlockBytes, r.Get1, r.Get4, r.Put1, r.Put4)
	}
	fmt.Fprintf(w, "array fusion effect: 128 B -> %.0f%% utilization, 432 B -> %.0f%% (paper: ~50%% -> ~80%%)\n",
		100*sunway.BandwidthUtilization(128, sunway.DMAGet),
		100*sunway.BandwidthUtilization(432, sunway.DMAGet))
	return rows
}

// Table4 prints the utilization accounting of the largest uncompressed
// nonlinear run and returns the rows.
func Table4(w io.Writer) []perfmodel.Table4Row {
	rows := perfmodel.Table4()
	fmt.Fprintln(w, "Table 4: per-CG utilization, largest nonlinear case (no compression)")
	fmt.Fprintf(w, "%-24s %12s %12s %8s\n", "metric", "effective", "peak", "%")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %12.1f %12.1f %7.1f%%\n", r.Name, r.Effective, r.Peak, 100*r.Effective/r.Peak)
	}
	return rows
}

// Capability prints the paper's headline capability claims: the maximum
// problem size with and without compression, and the 18-Hz / 8-m extreme
// case's memory fit and time to solution.
func Capability(w io.Writer) perfmodel.ExtremeCase {
	fmt.Fprintln(w, "Capability (paper §2 performance attributes):")
	fmt.Fprintf(w, "max problem size:  %.2f trillion points uncompressed, %.2f trillion compressed (%.2fx; paper: 3.99 -> 7.8, ~1.95x)\n",
		perfmodel.MaxProblemPoints(false)/1e12, perfmodel.MaxProblemPoints(true)/1e12, perfmodel.ProblemSizeGain())
	e := perfmodel.PaperExtremeCase()
	fmt.Fprintf(w, "extreme case:      %dx%dx%d at %.0f m (%.2f trillion points), %d steps for %.0f s of shaking\n",
		e.Mesh.Nx, e.Mesh.Ny, e.Mesh.Nz, e.Dx, float64(e.Mesh.Points())/1e12, e.Steps(), e.SimSeconds)
	fits := "fits only WITH compression"
	plain := e
	plain.Compressed = false
	if plain.FitsMemory() {
		fits = "fits even uncompressed"
	}
	fmt.Fprintf(w, "memory:            %s\n", fits)
	fmt.Fprintf(w, "time to solution:  %.1f h on 160,000 processes at %.1f sustained Pflops\n",
		e.TimeToSolution(160000), e.SustainedPflops(160000))
	return e
}

// Baseline prints the Titan comparison (paper §4 / Table 2 bottom rows):
// the 2016 nonlinear AWP on Titan vs this work, with efficiencies.
func Baseline(w io.Writer) (titanEff, taihuEff float64) {
	titanEff = perfmodel.TitanEfficiency()
	taihuEff = perfmodel.TaihuLightEfficiency()
	fmt.Fprintln(w, "Baseline comparison (paper §4): nonlinear AWP, Titan 2016 vs this work")
	fmt.Fprintf(w, "%-28s %14s %12s %12s\n", "system", "sustained", "% of peak", "byte/flop")
	fmt.Fprintf(w, "%-28s %11.2f Pf %11.1f%% %12.3f\n",
		"Titan (8,192 K20X GPUs)", perfmodel.TitanSustainedPflops(), 100*titanEff, 0.202)
	fmt.Fprintf(w, "%-28s %11.2f Pf %11.1f%% %12.3f\n",
		"TaihuLight (160,000 CGs)",
		perfmodel.WeakScalingPoint(perfmodel.Case{Nonlinear: true, Compressed: true}, 160000, perfmodel.PaperWeakBlock),
		100*taihuEff, 0.038)
	fmt.Fprintf(w, "-> %.1fx higher efficiency on a machine with %.1fx LESS bandwidth per flop (paper: 15%% vs 11.8%%)\n",
		taihuEff/titanEff, perfmodel.ByteToFlopDisadvantage())
	return titanEff, taihuEff
}
