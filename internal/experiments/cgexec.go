package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"swquake/internal/cgexec"
	"swquake/internal/fd"
	"swquake/internal/grid"
	"swquake/internal/model"
	"swquake/internal/perfmodel"
	"swquake/internal/sunway"
)

// ExecutedMEMResult compares the executed tile-by-tile core-group run
// against the analytic MEM-strategy prediction.
type ExecutedMEMResult struct {
	// SimBandwidthGBs is the effective DMA bandwidth of the executed
	// tiled step under the machine model's clock.
	SimBandwidthGBs float64
	// ModelBandwidthGBs is the blocking model's prediction.
	ModelBandwidthGBs float64
	// HaloOverhead is executed halo bytes / interior bytes.
	HaloOverhead float64
	// LDMPeakBytes is the executed peak working set.
	LDMPeakBytes int
	// StepSeconds is the simulated CG time for one velocity+stress pass.
	StepSeconds float64
}

// ExecutedMEM runs one velocity+stress pass of a CG block through the
// tile-by-tile executor (package cgexec) and cross-checks the simulated
// bandwidth and LDM usage against the analytic model that Figs. 7-9 and
// Table 4 are built on. This closes the loop between the executed and the
// modeled halves of the reproduction.
func ExecutedMEM(w io.Writer, block grid.Dims) (*ExecutedMEMResult, error) {
	wf := fd.NewWavefield(block)
	rng := rand.New(rand.NewSource(7))
	for _, f := range wf.AllFields() {
		for i := range f.Data {
			f.Data[i] = rng.Float32()*2 - 1
		}
	}
	med := fd.NewMedium(block)
	mat := model.Material{Vp: 5000, Vs: 2887, Rho: 2700}
	lam, mu := mat.Lame()
	med.Rho.Fill(float32(mat.Rho))
	med.Lam.Fill(float32(lam))
	med.Mu.Fill(float32(mu))

	ex, err := cgexec.New(block)
	if err != nil {
		return nil, err
	}
	if err := ex.VelocityStep(wf, med, 0.001); err != nil {
		return nil, err
	}
	if err := ex.StressStep(wf, med, 0.001); err != nil {
		return nil, err
	}

	s := ex.Stats
	interior := float64(block.Points()) * (10 + 3 + 11 + 6) * 4 // logical traffic
	res := &ExecutedMEMResult{
		SimBandwidthGBs:   s.EffectiveBandwidth(),
		ModelBandwidthGBs: ex.Cfg.EffBWGBs,
		HaloOverhead:      float64(s.DMAGetBytes+s.DMAPutBytes)/interior - 1,
		LDMPeakBytes:      s.LDMPeakBytes,
		StepSeconds:       s.StepSeconds(),
	}
	fmt.Fprintln(w, "Executed core-group step (tile-by-tile through simulated LDM/DMA):")
	fmt.Fprintf(w, "block %v, tile Wz=%d Wy=%d, %d tiles, %d DMA transfers\n",
		block, ex.Cfg.Wz, ex.Cfg.Wy, s.Tiles, s.DMATransfers)
	fmt.Fprintf(w, "simulated bandwidth %.1f GB/s vs blocking-model prediction %.1f GB/s (DDR3 peak %.0f)\n",
		res.SimBandwidthGBs, res.ModelBandwidthGBs, float64(sunway.CGMemBWGBs))
	fmt.Fprintf(w, "halo DMA overhead %.1f%%, LDM peak %d B of %d\n",
		100*res.HaloOverhead, res.LDMPeakBytes, sunway.LDMBytes)
	fmt.Fprintf(w, "simulated CG step %.2f ms (perfmodel linear-case estimate %.2f ms at this size)\n",
		1e3*res.StepSeconds, 1e3*perfmodel.CGStepSeconds(perfmodel.Case{}, block.Points()))
	return res, nil
}
