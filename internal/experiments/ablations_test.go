package experiments

import (
	"io"
	"os"
	"testing"

	"swquake/internal/compress"
	"swquake/internal/grid"
)

func gridDims(nx, ny, nz int) grid.Dims { return grid.Dims{Nx: nx, Ny: ny, Nz: nz} }

func TestAblationFusion(t *testing.T) {
	res, err := AblationFusion(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.FusedBW <= res.UnfusedBW {
		t.Fatalf("fusion must raise bandwidth: %g vs %g", res.FusedBW, res.UnfusedBW)
	}
	if res.FusedBlock < 432 {
		t.Fatalf("fused block %d B, paper says 432+", res.FusedBlock)
	}
	if res.UnfusedBlock > 200 {
		t.Fatalf("unfused block %d B, paper says ~128", res.UnfusedBlock)
	}
	if res.PredictedSpeedup < 1.3 {
		t.Fatalf("fusion speedup %g too small", res.PredictedSpeedup)
	}
}

func TestAblationCompressionMethods(t *testing.T) {
	rows, err := AblationCompressionMethods(io.Discard, Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byMethod := map[compress.Method]AblationMethodResult{}
	for _, r := range rows {
		byMethod[r.Method] = r
	}
	// method 1 must hit its documented overflow at these stress levels
	if !byMethod[compress.Half].Diverged {
		t.Fatal("half-precision run should diverge (5-bit exponent overflow)")
	}
	// methods 2 and 3 stay stable with bounded misfit
	for _, m := range []compress.Method{compress.Adaptive, compress.Normalized} {
		r := byMethod[m]
		if r.Diverged {
			t.Fatalf("%v diverged", m)
		}
		if r.Misfit <= 0 || r.Misfit > 0.7 {
			t.Fatalf("%v misfit %g out of range", m, r.Misfit)
		}
	}
}

func TestExecutedMEMCrossChecksModel(t *testing.T) {
	res, err := ExecutedMEM(io.Discard, gridDims(40, 40, 64))
	if err != nil {
		t.Fatal(err)
	}
	// the executed bandwidth must sit within the physical envelope and
	// within ~35% of the blocking model's prediction (the executed path
	// includes halo transfers the analytic prediction amortizes)
	if res.SimBandwidthGBs <= 0 || res.SimBandwidthGBs > 34 {
		t.Fatalf("simulated bandwidth %g outside (0, 34]", res.SimBandwidthGBs)
	}
	ratio := res.SimBandwidthGBs / res.ModelBandwidthGBs
	if ratio < 0.5 || ratio > 1.5 {
		t.Fatalf("executed/model bandwidth ratio %g", ratio)
	}
	if res.HaloOverhead < 0 || res.HaloOverhead > 1.0 {
		t.Fatalf("halo overhead %g", res.HaloOverhead)
	}
	if res.LDMPeakBytes <= 0 || res.LDMPeakBytes > 64*1024 {
		t.Fatalf("LDM peak %d", res.LDMPeakBytes)
	}
}

func TestExecutedMEMPaperBlock(t *testing.T) {
	if os.Getenv("SWQUAKE_PAPER_BLOCK") == "" {
		t.Skip("set SWQUAKE_PAPER_BLOCK=1 to run the 160x160x512 executor check (~60 s)")
	}
	// the paper's own weak-scaling block: 160 x 160 x 512 per core group
	res, err := ExecutedMEM(io.Discard, gridDims(160, 160, 512))
	if err != nil {
		t.Fatal(err)
	}
	if res.LDMPeakBytes > 64*1024 {
		t.Fatalf("LDM peak %d exceeds the scratchpad", res.LDMPeakBytes)
	}
	// Table 4's effective bandwidth band: 70-90% of the 34 GB/s peak
	if res.SimBandwidthGBs < 0.6*34 || res.SimBandwidthGBs > 34 {
		t.Fatalf("paper-block simulated bandwidth %g GB/s outside Table 4 band", res.SimBandwidthGBs)
	}
}
