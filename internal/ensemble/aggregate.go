package ensemble

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"swquake/internal/atomicio"
	"swquake/internal/seismo"
)

// aggregator folds member surface-PGV fields into the campaign's online
// statistics. The fold order is pinned to the member index via
// seismo.OrderedFold, so whatever order the scheduler's members complete
// in, the Welford sequence — and therefore every bit of the aggregate —
// is identical. Folded fields are also retained (and, in durable mode,
// persisted one file per member) so percentile maps are exact and a
// restarted campaign re-folds the same bits.
type aggregator struct {
	mu          sync.Mutex
	dir         string // per-campaign state directory; "" = memory only
	thresholds  []float64
	percentiles []float64

	stats  *seismo.FieldStats
	fold   *seismo.OrderedFold
	fields map[int][]float64 // folded member fields, by member index
	// pendingSkips holds skips that arrive before the first field fixes
	// the aggregate's shape (stats and fold are created lazily).
	pendingSkips []int
}

func newAggregator(dir string, thresholds, percentiles []float64) *aggregator {
	return &aggregator{
		dir:         dir,
		thresholds:  thresholds,
		percentiles: percentiles,
		fields:      make(map[int][]float64),
	}
}

// memberField is the on-disk form of one member's surface PGV field.
// encoding/json round-trips float64 exactly, so a re-folded field is
// bit-identical to the one the first life folded.
type memberField struct {
	Nx     int       `json:"nx"`
	Ny     int       `json:"ny"`
	Values []float64 `json:"values"`
}

func (a *aggregator) memberPath(idx int) string {
	return filepath.Join(a.dir, fmt.Sprintf("member-%06d.json", idx))
}

// persist writes a member field to the campaign directory (write-ahead of
// the member_done journal event, so a journaled member always has its
// field on disk).
func (a *aggregator) persist(idx int, nx, ny int, values []float64) error {
	if a.dir == "" {
		return nil
	}
	if err := os.MkdirAll(a.dir, 0o755); err != nil {
		return err
	}
	return atomicio.WriteFile(a.memberPath(idx), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(memberField{Nx: nx, Ny: ny, Values: values})
	})
}

// load reads a persisted member field back (boot-time re-fold).
func (a *aggregator) load(idx int) (memberField, error) {
	var mf memberField
	data, err := os.ReadFile(a.memberPath(idx))
	if err != nil {
		return mf, err
	}
	if err := json.Unmarshal(data, &mf); err != nil {
		return mf, err
	}
	if mf.Nx*mf.Ny != len(mf.Values) {
		return mf, fmt.Errorf("ensemble: member %d field is %dx%d but has %d values", idx, mf.Nx, mf.Ny, len(mf.Values))
	}
	return mf, nil
}

// add folds member idx's field (buffering until its predecessors are in).
func (a *aggregator) add(idx, nx, ny int, values []float64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stats == nil {
		a.stats = seismo.NewFieldStats(nx, ny, a.thresholds)
		a.fold = seismo.NewOrderedFold(a.stats)
		for _, s := range a.pendingSkips {
			if err := a.fold.Skip(s); err != nil {
				return err
			}
		}
		a.pendingSkips = nil
	}
	if nx != a.stats.Nx || ny != a.stats.Ny {
		return fmt.Errorf("ensemble: member %d field is %dx%d, campaign aggregates %dx%d",
			idx, nx, ny, a.stats.Nx, a.stats.Ny)
	}
	if err := a.fold.Add(idx, values); err != nil {
		return err
	}
	a.fields[idx] = values
	return nil
}

// skip advances the fold past a failed member.
func (a *aggregator) skip(idx int) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.fold == nil {
		a.pendingSkips = append(a.pendingSkips, idx)
		return nil
	}
	return a.fold.Skip(idx)
}

// folded reports how many members are in the statistics.
func (a *aggregator) folded() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stats == nil {
		return 0
	}
	return a.stats.Count()
}

// Aggregate is the campaign's statistical hazard product: per-cell mean
// and standard deviation of the members' surface PGV, the mean intensity
// map, exceedance-probability maps per threshold, and percentile PGV
// maps. Fields are row-major Nx x Ny (the PGVField layout). Members is
// the folded count — the aggregate is available (and meaningful) while
// the campaign is still running.
type Aggregate struct {
	Campaign string `json:"campaign"`
	Scenario string `json:"scenario"`
	State    State  `json:"state"`
	// Members is the campaign's total expansion; Folded counts members in
	// the statistics so far; Skipped counts members dropped (failed).
	Members int `json:"members"`
	Folded  int `json:"folded"`
	Skipped int `json:"skipped,omitempty"`

	Nx int `json:"nx"`
	Ny int `json:"ny"`

	MeanPGV       []float64 `json:"mean_pgv"`
	StdPGV        []float64 `json:"std_pgv"`
	MeanIntensity []float64 `json:"mean_intensity"`

	Thresholds []float64   `json:"thresholds_m_s"`
	ExceedProb [][]float64 `json:"exceed_prob"`

	Percentiles   []float64   `json:"percentiles"`
	PercentilePGV [][]float64 `json:"percentile_pgv"`

	// MeanPGVMax / MeanIntensityMax are the headline numbers: the peak of
	// the mean-PGV map and its intensity.
	MeanPGVMax       float64 `json:"mean_pgv_max_m_s"`
	MeanIntensityMax float64 `json:"mean_intensity_max"`
}

// snapshot renders the current statistics. Returns nil when no member has
// folded yet.
func (a *aggregator) snapshot() *Aggregate {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stats == nil || a.stats.Count() == 0 {
		return nil
	}
	mean := a.stats.Mean()
	agg := &Aggregate{
		Folded:      a.stats.Count(),
		Nx:          a.stats.Nx,
		Ny:          a.stats.Ny,
		MeanPGV:     mean,
		StdPGV:      a.stats.Std(),
		Thresholds:  append([]float64(nil), a.thresholds...),
		ExceedProb:  a.stats.ExceedProb(),
		Percentiles: append([]float64(nil), a.percentiles...),
	}
	agg.MeanIntensity = seismo.IntensityField(mean)
	for _, v := range mean {
		if v > agg.MeanPGVMax {
			agg.MeanPGVMax = v
		}
	}
	agg.MeanIntensityMax = seismo.Intensity(agg.MeanPGVMax)

	members := make([][]float64, 0, len(a.fields))
	for _, idx := range sortedKeys(a.fields) {
		members = append(members, a.fields[idx])
	}
	for _, p := range a.percentiles {
		agg.PercentilePGV = append(agg.PercentilePGV, seismo.PercentileField(members, p))
	}
	return agg
}
