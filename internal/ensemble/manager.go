package ensemble

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"swquake/internal/admission"
	"swquake/internal/manifest"
	"swquake/internal/scenario"
	"swquake/internal/service"
	"swquake/internal/telemetry"
)

// tracePID is the trace-event process ID campaigns are recorded under
// (the job service owns pid 0).
const tracePID = 1

// Options configures a Manager.
type Options struct {
	// Service is the job service members run on (required).
	Service *service.Service
	// DataDir, when non-empty, makes campaigns durable: specs and member
	// outcomes are journaled to DataDir/campaigns.jsonl, member PGV
	// fields are persisted under DataDir/campaigns/<id>/, and Open
	// resumes unfinished campaigns on boot. Use the same DataDir as the
	// job service so member jobs and campaigns recover together.
	DataDir string
	// DefaultConcurrent bounds members in flight per campaign when the
	// spec doesn't say (0 = 2).
	DefaultConcurrent int
	// Logger receives campaign lifecycle events. Nil discards them.
	Logger *slog.Logger
	// Tracer, when set, records campaign lifecycles as Chrome trace
	// events on their own process track (pid 1, one thread per campaign).
	Tracer *telemetry.Tracer
}

// memberPhase is the scheduler's view of one member.
type memberPhase int

const (
	memberPending memberPhase = iota
	memberInflight
	memberDone
	memberSkipped
)

// campaign is the manager-internal record of one campaign.
type campaign struct {
	id      string
	spec    CampaignSpec
	members []service.JobSpec
	agg     *aggregator

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu           sync.Mutex
	state        State
	err          error
	userCanceled bool
	recovered    bool
	jobs         []string // member index -> job ID ("" before submission)
	phases       []memberPhase
	memberErrs   []string
	created      time.Time
	finished     time.Time
}

// Manager orchestrates campaigns over a job service.
type Manager struct {
	svc    *service.Service
	opts   Options
	log    *slog.Logger
	tracer *telemetry.Tracer
	wal    *journal // nil without DataDir
	vars   *expvar.Map

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup // campaign runner goroutines

	mu        sync.Mutex
	campaigns map[string]*campaign
	nextID    int
	closed    bool
}

// managerCounters lists every counter the manager maintains, so metrics
// show zeros rather than omitting untouched names.
var managerCounters = []string{
	"campaigns_created", "campaigns_recovered",
	"campaigns_done", "campaigns_failed", "campaigns_canceled",
	"members_submitted", "members_done", "members_failed", "members_folded",
	"journal_events",
}

// Open builds a Manager. With Options.DataDir set it first recovers:
// the campaign journal is replayed, unfinished campaigns re-fold their
// persisted member fields in member-index order (bit-identical to the
// first life) and resume their remaining members — re-attaching to member
// jobs the job service itself recovered, resubmitting the rest.
func Open(opts Options) (*Manager, error) {
	if opts.Service == nil {
		return nil, fmt.Errorf("ensemble: Options.Service is required")
	}
	if opts.DefaultConcurrent <= 0 {
		opts.DefaultConcurrent = 2
	}
	if opts.Logger == nil {
		opts.Logger = telemetry.Discard()
	}
	m := &Manager{
		svc:       opts.Service,
		opts:      opts,
		log:       opts.Logger,
		tracer:    opts.Tracer,
		vars:      new(expvar.Map).Init(),
		campaigns: make(map[string]*campaign),
	}
	for _, name := range managerCounters {
		m.vars.Add(name, 0)
	}
	m.baseCtx, m.baseCancel = context.WithCancel(context.Background())
	m.tracer.NameProcess(tracePID, "ensemble")

	if opts.DataDir == "" {
		return m, nil
	}
	if err := os.MkdirAll(filepath.Join(opts.DataDir, "campaigns"), 0o755); err != nil {
		return nil, err
	}
	path := m.journalPath()
	events, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	var live []*campaignRecord
	for _, rec := range replayJournal(events) {
		if n := campSeq(rec.id); n > m.nextID {
			m.nextID = n
		}
		if !rec.terminal() && rec.spec != nil {
			live = append(live, rec)
		}
	}
	if err := compactJournal(path, live, time.Now()); err != nil {
		return nil, err
	}
	wal, err := openJournal(path)
	if err != nil {
		return nil, err
	}
	m.wal = wal
	for _, rec := range live {
		if err := m.recoverCampaign(rec); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *Manager) journalPath() string {
	return filepath.Join(m.opts.DataDir, "campaigns.jsonl")
}

func (m *Manager) stateDir(id string) string {
	if m.opts.DataDir == "" {
		return ""
	}
	return filepath.Join(m.opts.DataDir, "campaigns", id)
}

// logEvent appends to the campaign journal when the manager is durable.
func (m *Manager) logEvent(ev campaignEvent) {
	if m.wal == nil {
		return
	}
	ev.Time = time.Now()
	if err := m.wal.append(ev); err == nil {
		m.vars.Add("journal_events", 1)
	}
}

// newCampaign builds the in-memory record for a normalized spec.
func (m *Manager) newCampaign(id string, spec CampaignSpec) (*campaign, error) {
	members, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	c := &campaign{
		id:         id,
		spec:       spec,
		members:    members,
		agg:        newAggregator(m.stateDir(id), spec.Thresholds, spec.Percentiles),
		done:       make(chan struct{}),
		state:      StateRunning,
		jobs:       make([]string, len(members)),
		phases:     make([]memberPhase, len(members)),
		memberErrs: make([]string, len(members)),
		created:    time.Now(),
	}
	c.ctx, c.cancel = context.WithCancel(m.baseCtx)
	return c, nil
}

// recoverCampaign rebuilds a live campaign from its journal record: done
// members re-fold from their persisted fields (strictly ascending index,
// so the Welford sequence matches the first life bit for bit), skipped
// members advance the fold, and everything else is left pending for the
// scheduler — which will re-attach to jobs the service still knows.
func (m *Manager) recoverCampaign(rec *campaignRecord) error {
	spec := *rec.spec
	c, err := m.newCampaign(rec.id, spec)
	if err != nil {
		// a spec that no longer expands (e.g. scenario removed between
		// boots) is logged and dropped rather than failing the whole boot
		m.log.Error("recovered campaign no longer builds", "campaign", rec.id, "error", err.Error())
		return nil
	}
	c.recovered = true
	for idx, job := range rec.jobs {
		if idx >= 0 && idx < len(c.jobs) {
			c.jobs[idx] = job
		}
	}
	for _, idx := range sortedKeys(rec.done) {
		if idx < 0 || idx >= len(c.phases) {
			continue
		}
		mf, err := c.agg.load(idx)
		if err != nil {
			// field lost or torn: re-run the member (deterministic, so the
			// re-folded aggregate is unchanged)
			m.log.Warn("member field unreadable, re-running", "campaign", c.id, "member", idx, "error", err.Error())
			c.jobs[idx] = ""
			continue
		}
		if err := c.agg.add(idx, mf.Nx, mf.Ny, mf.Values); err != nil {
			return fmt.Errorf("ensemble: refolding %s member %d: %w", c.id, idx, err)
		}
		c.phases[idx] = memberDone
	}
	for _, idx := range sortedKeys(rec.skipped) {
		if idx < 0 || idx >= len(c.phases) {
			continue
		}
		if err := c.agg.skip(idx); err != nil {
			return fmt.Errorf("ensemble: replaying skip of %s member %d: %w", c.id, idx, err)
		}
		c.phases[idx] = memberSkipped
		c.memberErrs[idx] = rec.skipped[idx]
	}
	m.campaigns[c.id] = c
	m.vars.Add("campaigns_recovered", 1)
	m.tracer.NameThread(tracePID, campSeq(c.id), c.id)
	m.log.Info("campaign recovered", "campaign", c.id,
		"members", len(c.members), "refolded", c.agg.folded())
	m.wg.Add(1)
	go m.runCampaign(c)
	return nil
}

// Create validates, journals and starts a campaign, returning its status.
func (m *Manager) Create(spec CampaignSpec) (Status, error) {
	norm, err := spec.normalized(m.opts.DefaultConcurrent)
	if err != nil {
		return Status{}, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Status{}, ErrClosed
	}
	m.nextID++
	id := fmt.Sprintf("camp-%06d", m.nextID)
	c, err := m.newCampaign(id, norm)
	if err != nil {
		m.mu.Unlock()
		return Status{}, err
	}
	m.campaigns[id] = c
	m.mu.Unlock()

	// write-ahead: the campaign is on disk before Create returns, so a
	// crash between accept and completion cannot lose it
	m.logEvent(campaignEvent{Event: "created", Campaign: id, Spec: &norm})
	m.vars.Add("campaigns_created", 1)
	m.tracer.NameThread(tracePID, campSeq(id), id)
	m.log.Info("campaign created", "campaign", id, "scenario", norm.Scenario,
		"members", len(c.members), "concurrency", norm.MaxConcurrent)

	m.wg.Add(1)
	go m.runCampaign(c)
	return m.statusOf(c), nil
}

// runCampaign drives every member through the job service with bounded
// concurrency, then settles the campaign's terminal state.
func (m *Manager) runCampaign(c *campaign) {
	defer m.wg.Done()
	start := time.Now()
	sem := make(chan struct{}, c.spec.MaxConcurrent)
	var wg sync.WaitGroup
launch:
	for idx := range c.members {
		c.mu.Lock()
		phase := c.phases[idx]
		c.mu.Unlock()
		if phase == memberDone || phase == memberSkipped {
			continue
		}
		select {
		case <-c.ctx.Done():
			break launch
		case sem <- struct{}{}:
		}
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			defer func() { <-sem }()
			m.runMember(c, idx)
		}(idx)
	}
	wg.Wait()
	m.finishCampaign(c, start)
}

// runMember runs one member end to end: (re)submit, wait, fold.
func (m *Manager) runMember(c *campaign, idx int) {
	spec := c.members[idx]
	c.mu.Lock()
	jobID := c.jobs[idx]
	c.phases[idx] = memberInflight
	c.mu.Unlock()

	if jobID != "" {
		// recovered campaign: re-attach if the service still knows the job
		// (durable services requeue unfinished jobs under their original
		// IDs); otherwise fall through to a fresh submission
		if _, err := m.svc.Status(jobID); err != nil {
			jobID = ""
		}
	}
	if jobID == "" {
		cfg, err := scenario.Build(spec.Scenario, spec.Overrides)
		if err != nil {
			m.memberSkip(c, idx, err)
			return
		}
		// campaign members are batch-class work: the admission scheduler's
		// weighted dispatch keeps a sweep from starving interactive jobs
		spec.Class = admission.ClassBatch
		req := service.Request{
			Config:  cfg,
			MX:      spec.MX,
			MY:      spec.MY,
			Timeout: time.Duration(spec.TimeoutS * float64(time.Second)),
			Class:   admission.ClassBatch,
			Spec:    &spec,
		}
		for {
			if m.draining() {
				m.park(c, idx) // shutdown: leave pending for the next boot
				return
			}
			id, err := m.svc.Submit(req)
			if err == nil {
				jobID = id
				break
			}
			switch {
			case errors.Is(err, service.ErrQueueFull),
				errors.Is(err, admission.ErrRateLimited),
				errors.Is(err, admission.ErrShedding):
				// backpressure or load shedding: the campaign yields rather
				// than spinning, honoring the rejection's Retry-After hint
				// when it carries one (capped so drains stay responsive)
				wait := 50 * time.Millisecond
				if hint, ok := admission.RetryAfter(err); ok && hint > wait {
					if hint > time.Second {
						hint = time.Second
					}
					wait = hint
				}
				select {
				case <-c.ctx.Done():
					m.park(c, idx)
					return
				case <-time.After(wait):
				}
			case errors.Is(err, service.ErrClosed):
				m.park(c, idx)
				return
			default:
				// includes admission.ErrNeverFits: a member bigger than the
				// memory budget can never run on this daemon — skip it, the
				// campaign completes on the members that fit
				m.memberSkip(c, idx, err)
				return
			}
		}
		c.mu.Lock()
		c.jobs[idx] = jobID
		c.mu.Unlock()
		m.logEvent(campaignEvent{Event: "member", Campaign: c.id, Member: idx, Job: jobID})
		m.vars.Add("members_submitted", 1)
	}

	st, err := m.svc.Wait(c.ctx, jobID)
	if err != nil {
		m.park(c, idx) // canceled campaign or shutdown; job outcome unknown
		return
	}
	switch st.State {
	case service.StateDone:
		res, err := m.svc.Result(jobID)
		if err != nil {
			m.memberSkip(c, idx, err)
			return
		}
		m.memberFold(c, idx, jobID, res)
	default: // failed or canceled: drop from the aggregate
		cause := st.Error
		if cause == "" {
			cause = string(st.State)
		}
		m.memberSkip(c, idx, errors.New(cause))
	}
}

// park returns a member to pending without resolving it — the shutdown
// path. Durable campaigns pick it up on the next boot.
func (m *Manager) park(c *campaign, idx int) {
	c.mu.Lock()
	c.phases[idx] = memberPending
	c.mu.Unlock()
}

// memberFold persists and folds a finished member's surface field.
func (m *Manager) memberFold(c *campaign, idx int, jobID string, res *service.Result) {
	if res.PGV == nil {
		m.memberSkip(c, idx, errors.New("member result has no surface PGV field"))
		return
	}
	// write-ahead for the aggregate: the field is on disk before the
	// member_done event, so a journaled member always re-folds
	if err := c.agg.persist(idx, res.PGV.Nx, res.PGV.Ny, res.PGV.Values); err != nil {
		// fold in memory anyway; without the journal event the next boot
		// simply re-runs this member (deterministically, same bits)
		m.log.Warn("member field persist failed", "campaign", c.id, "member", idx, "error", err.Error())
	} else {
		m.logEvent(campaignEvent{Event: "member_done", Campaign: c.id, Member: idx})
	}
	if err := c.agg.add(idx, res.PGV.Nx, res.PGV.Ny, res.PGV.Values); err != nil {
		m.memberSkip(c, idx, err)
		return
	}
	c.mu.Lock()
	c.phases[idx] = memberDone
	c.mu.Unlock()
	m.vars.Add("members_done", 1)
	m.vars.Add("members_folded", 1)
	m.tracer.Instant(tracePID, campSeq(c.id), "campaign", "member_done", time.Now(),
		map[string]any{"member": idx, "job": jobID})
	m.log.Info("campaign member done", "campaign", c.id, "member", idx, "job", jobID,
		"folded", c.agg.folded())
}

// memberSkip drops a member from the aggregate after a permanent failure.
func (m *Manager) memberSkip(c *campaign, idx int, cause error) {
	m.logEvent(campaignEvent{Event: "member_skip", Campaign: c.id, Member: idx, Error: cause.Error()})
	if err := c.agg.skip(idx); err != nil {
		m.log.Error("member skip failed", "campaign", c.id, "member", idx, "error", err.Error())
	}
	c.mu.Lock()
	c.phases[idx] = memberSkipped
	c.memberErrs[idx] = cause.Error()
	c.mu.Unlock()
	m.vars.Add("members_failed", 1)
	m.log.Warn("campaign member skipped", "campaign", c.id, "member", idx, "error", cause.Error())
}

// finishCampaign settles the terminal state once every member goroutine
// has returned. Members left pending by a shutdown keep the campaign
// non-terminal: nothing terminal is journaled, so the next boot resumes.
func (m *Manager) finishCampaign(c *campaign, started time.Time) {
	c.mu.Lock()
	var unresolved, skipped int
	for _, ph := range c.phases {
		switch ph {
		case memberDone:
		case memberSkipped:
			skipped++
		default:
			unresolved++
		}
	}
	var state State
	switch {
	case c.userCanceled:
		state = StateCanceled
	case unresolved > 0:
		// shutdown parked members: leave the campaign running on disk
		c.mu.Unlock()
		close(c.done)
		m.log.Info("campaign parked for next boot", "campaign", c.id, "pending", unresolved)
		return
	case skipped > 0:
		state = StateFailed
		for idx, e := range c.memberErrs {
			if e != "" {
				c.err = fmt.Errorf("ensemble: member %d failed: %s", idx, e)
				break
			}
		}
	default:
		state = StateDone
	}
	c.state = state
	c.finished = time.Now()
	jobs := append([]string(nil), c.jobs...)
	members := len(c.members)
	c.mu.Unlock()
	close(c.done)

	m.logEvent(campaignEvent{Event: string(state), Campaign: c.id})
	m.vars.Add("campaigns_"+string(state), 1)
	m.tracer.Span(tracePID, campSeq(c.id), "campaign", "running", started, time.Since(started),
		map[string]any{"state": string(state), "members": members})
	m.log.Info("campaign finished", "campaign", c.id, "state", string(state),
		"members", members, "folded", c.agg.folded(), "skipped", skipped)

	if dir := m.stateDir(c.id); dir != "" {
		cm := manifest.CampaignManifest{
			ID: c.id, Name: c.spec.Name, Scenario: c.spec.Scenario, State: string(state),
			Members: members, Folded: c.agg.folded(), Skipped: skipped,
			MemberJobs: jobs, Thresholds: append([]float64(nil), c.spec.Thresholds...),
			Created: c.created, Finished: c.finished,
		}
		if agg := c.agg.snapshot(); agg != nil {
			cm.MeanPGVMax = agg.MeanPGVMax
			cm.MeanIntensityMax = agg.MeanIntensityMax
		}
		if err := os.MkdirAll(dir, 0o755); err == nil {
			if err := cm.Save(filepath.Join(dir, "manifest.json")); err != nil {
				m.log.Error("campaign manifest write failed", "campaign", c.id, "error", err.Error())
			}
		}
	}
}

func (m *Manager) draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// statusOf snapshots one campaign.
func (m *Manager) statusOf(c *campaign) Status {
	c.mu.Lock()
	st := Status{
		ID:        c.id,
		Name:      c.spec.Name,
		Scenario:  c.spec.Scenario,
		State:     c.state,
		Members:   len(c.members),
		Recovered: c.recovered,
		Created:   c.created,
		Finished:  c.finished,
	}
	if c.err != nil {
		st.Error = c.err.Error()
	}
	jobs := append([]string(nil), c.jobs...)
	phases := append([]memberPhase(nil), c.phases...)
	c.mu.Unlock()

	st.MemberJobs = make([]MemberStatus, len(jobs))
	for idx, job := range jobs {
		ms := MemberStatus{Index: idx, Job: job}
		switch phases[idx] {
		case memberDone:
			st.Done++
			ms.State = string(service.StateDone)
		case memberSkipped:
			st.Failed++
			ms.State = "skipped"
		case memberInflight:
			st.Running++
			ms.State = "running"
			if job != "" {
				if js, err := m.svc.Status(job); err == nil {
					ms.State = string(js.State)
				}
			}
		default:
			st.Pending++
			ms.State = "pending"
		}
		st.MemberJobs[idx] = ms
	}
	st.Folded = c.agg.folded()
	return st
}

// Status reports a campaign's current state and member progress.
func (m *Manager) Status(id string) (Status, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownCampaign
	}
	return m.statusOf(c), nil
}

// List reports every known campaign, newest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	ids := make([]string, 0, len(m.campaigns))
	for id := range m.campaigns {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	sort.Strings(ids)
	out := make([]Status, 0, len(ids))
	for i := len(ids) - 1; i >= 0; i-- {
		if st, err := m.Status(ids[i]); err == nil {
			out = append(out, st)
		}
	}
	return out
}

// Aggregate returns the campaign's current statistical hazard product.
// It is available while the campaign runs (over the members folded so
// far); before any member has folded the maps are empty but the metadata
// is valid.
func (m *Manager) Aggregate(id string) (*Aggregate, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrUnknownCampaign
	}
	agg := c.agg.snapshot()
	if agg == nil {
		agg = &Aggregate{
			Thresholds:  append([]float64(nil), c.spec.Thresholds...),
			Percentiles: append([]float64(nil), c.spec.Percentiles...),
		}
	}
	c.mu.Lock()
	agg.Campaign = c.id
	agg.Scenario = c.spec.Scenario
	agg.State = c.state
	agg.Members = len(c.members)
	for _, ph := range c.phases {
		if ph == memberSkipped {
			agg.Skipped++
		}
	}
	c.mu.Unlock()
	return agg, nil
}

// Cancel requests cancellation of a campaign: pending members stop being
// scheduled and every in-flight member job is canceled at its next step
// boundary. Cancel reports whether the campaign exists; the campaign
// reaches StateCanceled once its members wind down.
func (m *Manager) Cancel(id string) bool {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return false
	}
	c.mu.Lock()
	if c.state.Terminal() {
		c.mu.Unlock()
		return true
	}
	c.userCanceled = true
	jobs := append([]string(nil), c.jobs...)
	c.mu.Unlock()
	c.cancel()
	for _, job := range jobs {
		if job != "" {
			m.svc.Cancel(job)
		}
	}
	m.log.Warn("campaign canceled", "campaign", id)
	return true
}

// Wait blocks until the campaign's runner settles (terminal state, or
// parked by a shutdown) or the context ends.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	m.mu.Lock()
	c, ok := m.campaigns[id]
	m.mu.Unlock()
	if !ok {
		return Status{}, ErrUnknownCampaign
	}
	select {
	case <-c.done:
		return m.statusOf(c), nil
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// Drain stops accepting campaigns and new member submissions, then waits
// for in-flight members to resolve (the job service keeps executing them
// until its own Drain). If the context ends first, member watchers are
// aborted; durable campaigns park and resume on the next boot. Call Drain
// before Service.Drain so finishing jobs still get folded.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
	case <-ctx.Done():
		m.baseCancel()
		<-idle
		if m.wal != nil {
			m.wal.Close()
		}
		return ctx.Err()
	}
	if m.wal != nil {
		m.wal.Close()
	}
	return nil
}

// Metrics is a consistent snapshot of the campaign counters.
type Metrics struct {
	Created, Recovered         int64
	Done, Failed, Canceled     int64
	MembersSubmitted           int64
	MembersDone, MembersFailed int64
	MembersFolded              int64
	JournalEvents              int64
	// Running / MembersInflight / MembersPending are point-in-time gauges.
	Running, MembersInflight, MembersPending int64
}

// Metrics snapshots the counters and gauges.
func (m *Manager) Metrics() Metrics {
	get := func(name string) int64 {
		if v, ok := m.vars.Get(name).(*expvar.Int); ok {
			return v.Value()
		}
		return 0
	}
	out := Metrics{
		Created:          get("campaigns_created"),
		Recovered:        get("campaigns_recovered"),
		Done:             get("campaigns_done"),
		Failed:           get("campaigns_failed"),
		Canceled:         get("campaigns_canceled"),
		MembersSubmitted: get("members_submitted"),
		MembersDone:      get("members_done"),
		MembersFailed:    get("members_failed"),
		MembersFolded:    get("members_folded"),
		JournalEvents:    get("journal_events"),
	}
	running, inflight, pending := m.gauges()
	out.Running, out.MembersInflight, out.MembersPending = running, inflight, pending
	return out
}

// gauges counts live campaigns and their member phases.
func (m *Manager) gauges() (running, inflight, pending int64) {
	m.mu.Lock()
	cs := make([]*campaign, 0, len(m.campaigns))
	for _, c := range m.campaigns {
		cs = append(cs, c)
	}
	m.mu.Unlock()
	for _, c := range cs {
		c.mu.Lock()
		if !c.state.Terminal() {
			running++
			for _, ph := range c.phases {
				switch ph {
				case memberInflight:
					inflight++
				case memberPending:
					pending++
				}
			}
		}
		c.mu.Unlock()
	}
	return
}

// Vars exposes the expvar map backing Metrics.
func (m *Manager) Vars() *expvar.Map { return m.vars }

// RegisterProm registers the campaign metric families on a Prometheus
// registry (the swquake_campaigns_* names quaked serves at /metrics).
func (m *Manager) RegisterProm(reg *telemetry.PromRegistry) {
	counter := func(name string) func() float64 {
		return func() float64 {
			if v, ok := m.vars.Get(name).(*expvar.Int); ok {
				return float64(v.Value())
			}
			return 0
		}
	}
	reg.CounterFunc("swquake_campaigns_created_total", "Campaigns accepted by Create.", counter("campaigns_created"))
	reg.CounterFunc("swquake_campaigns_recovered_total", "Campaigns resumed from the journal on boot.", counter("campaigns_recovered"))
	reg.CounterFunc("swquake_campaigns_done_total", "Campaigns finished with every member aggregated.", counter("campaigns_done"))
	reg.CounterFunc("swquake_campaigns_failed_total", "Campaigns finished with failed members.", counter("campaigns_failed"))
	reg.CounterFunc("swquake_campaigns_canceled_total", "Campaigns canceled by users.", counter("campaigns_canceled"))
	reg.CounterFunc("swquake_campaign_members_submitted_total", "Member jobs submitted to the job service.", counter("members_submitted"))
	reg.CounterFunc("swquake_campaign_members_done_total", "Member jobs finished and folded.", counter("members_done"))
	reg.CounterFunc("swquake_campaign_members_failed_total", "Member jobs dropped from their aggregate.", counter("members_failed"))

	reg.GaugeFunc("swquake_campaigns_running", "Campaigns currently executing.",
		func() float64 { r, _, _ := m.gauges(); return float64(r) })
	reg.GaugeFunc("swquake_campaign_members_inflight", "Members currently submitted or running.",
		func() float64 { _, i, _ := m.gauges(); return float64(i) })
	reg.GaugeFunc("swquake_campaign_members_pending", "Members of live campaigns not yet scheduled.",
		func() float64 { _, _, p := m.gauges(); return float64(p) })
}
