package ensemble

import (
	"strings"
	"testing"

	"swquake/internal/scenario"
)

func TestExpandOrderVariationsOuterSeedsInner(t *testing.T) {
	spec := CampaignSpec{
		Scenario: "tangshan",
		Base:     scenario.Overrides{Nx: 20, Ny: 18, Nz: 12, Steps: 10},
		Variations: []scenario.Overrides{
			{Steps: 20},
			{Nonlinear: true},
		},
		Seeds: SeedAxis{Base: 100, Count: 3, HetAmplitude: 0.05, HetCorrLen: 1500},
	}
	if n := spec.Members(); n != 6 {
		t.Fatalf("Members() = %d, want 6", n)
	}
	members, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 6 {
		t.Fatalf("expanded to %d members", len(members))
	}
	// member index = variation*seeds + seed offset
	for i, m := range members {
		v, s := i/3, i%3
		if m.Scenario != "tangshan" {
			t.Fatalf("member %d scenario %q", i, m.Scenario)
		}
		if m.Overrides.Seed != 100+int64(s) {
			t.Fatalf("member %d seed %d, want %d", i, m.Overrides.Seed, 100+s)
		}
		if m.Overrides.HetAmplitude != 0.05 || m.Overrides.HetCorrLen != 1500 {
			t.Fatalf("member %d het fields %+v", i, m.Overrides)
		}
		wantSteps := 20
		if v == 1 {
			wantSteps = 10 // base value: variation 1 doesn't touch steps
		}
		if m.Overrides.Steps != wantSteps {
			t.Fatalf("member %d steps %d, want %d", i, m.Overrides.Steps, wantSteps)
		}
		if v == 1 && !m.Overrides.Nonlinear {
			t.Fatalf("member %d lost the nonlinear variation", i)
		}
		// base grid survives overlay
		if m.Overrides.Nx != 20 || m.Overrides.Ny != 18 {
			t.Fatalf("member %d grid %+v", i, m.Overrides)
		}
	}
}

func TestExpandNoAxesIsSingleMember(t *testing.T) {
	spec := CampaignSpec{Scenario: "quickstart", Base: scenario.Overrides{Steps: 5}}
	members, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 1 || members[0].Overrides.Seed != 0 {
		t.Fatalf("members %+v", members)
	}
}

func TestOverlayNonZeroFieldsWin(t *testing.T) {
	base := scenario.Overrides{Nx: 10, Steps: 50, Qs: 40}
	v := scenario.Overrides{Steps: 99, Nonlinear: true}
	o := overlay(base, v)
	if o.Nx != 10 || o.Steps != 99 || o.Qs != 40 || !o.Nonlinear {
		t.Fatalf("overlay = %+v", o)
	}
}

func TestNormalizedValidation(t *testing.T) {
	cases := []struct {
		name string
		spec CampaignSpec
		want string // error substring; "" = must pass
	}{
		{"no scenario", CampaignSpec{}, "names no scenario"},
		{"unknown scenario", CampaignSpec{Scenario: "atlantis"}, "unknown scenario"},
		{"seed sweep without amplitude",
			CampaignSpec{Scenario: "quickstart", Seeds: SeedAxis{Count: 3}},
			"het_amplitude"},
		{"negative seed count",
			CampaignSpec{Scenario: "quickstart", Seeds: SeedAxis{Count: -1}},
			"negative seed count"},
		{"variation changes grid",
			CampaignSpec{Scenario: "tangshan", Variations: []scenario.Overrides{{Nx: 99}}},
			"surface grid"},
		{"variation sets seed",
			CampaignSpec{Scenario: "quickstart", Variations: []scenario.Overrides{{Seed: 3, HetAmplitude: 0.05}}},
			"seeds axis"},
		{"percentile out of range",
			CampaignSpec{Scenario: "quickstart", Percentiles: []float64{1.5}},
			"outside [0, 1]"},
		{"member that cannot build",
			CampaignSpec{Scenario: "quickstart", Variations: []scenario.Overrides{{Nonlinear: true}}},
			"does not build"},
		{"too many members",
			CampaignSpec{Scenario: "quickstart", Seeds: SeedAxis{Count: MaxMembers + 1, HetAmplitude: 0.05}},
			"max"},
		{"valid seed sweep",
			CampaignSpec{Scenario: "quickstart", Base: scenario.Overrides{Steps: 5},
				Seeds: SeedAxis{Base: 1, Count: 2, HetAmplitude: 0.05}},
			""},
	}
	for _, tc := range cases {
		norm, err := tc.spec.normalized(2)
		if tc.want == "" {
			if err != nil {
				t.Fatalf("%s: unexpected error %v", tc.name, err)
			}
			// defaults filled into the canonical (journaled) form
			if norm.MaxConcurrent != 2 {
				t.Fatalf("%s: MaxConcurrent %d", tc.name, norm.MaxConcurrent)
			}
			if len(norm.Thresholds) != len(DefaultThresholds) || len(norm.Percentiles) != len(DefaultPercentiles) {
				t.Fatalf("%s: defaults not filled: %+v", tc.name, norm)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestCampSeq(t *testing.T) {
	if campSeq("camp-000042") != 42 || campSeq("bogus") != 0 {
		t.Fatal("campSeq parsing broken")
	}
}

func TestReplayJournalFoldsRecords(t *testing.T) {
	spec := &CampaignSpec{Scenario: "quickstart"}
	events := []campaignEvent{
		{Event: "created", Campaign: "camp-000001", Spec: spec},
		{Event: "member", Campaign: "camp-000001", Member: 0, Job: "job-000001"},
		{Event: "member_done", Campaign: "camp-000001", Member: 0},
		{Event: "member", Campaign: "camp-000001", Member: 1, Job: "job-000002"},
		{Event: "member_skip", Campaign: "camp-000001", Member: 1, Error: "boom"},
		{Event: "created", Campaign: "camp-000002", Spec: spec},
		{Event: "done", Campaign: "camp-000002"},
	}
	recs := replayJournal(events)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records", len(recs))
	}
	r := recs[0]
	if r.terminal() || r.jobs[0] != "job-000001" || !r.done[0] || r.skipped[1] != "boom" {
		t.Fatalf("record %+v", r)
	}
	if !recs[1].terminal() {
		t.Fatal("finished campaign not terminal")
	}
}
