package ensemble

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"swquake/internal/atomicio"
)

// The campaign journal mirrors the job service's write-ahead log: one
// fsynced JSONL line per event, torn-tail tolerant on read, compacted on
// boot to just the live campaigns. A campaign's durable form is its
// normalized spec (expansion is deterministic) plus per-member outcomes;
// member PGV fields are persisted separately under the campaign's state
// directory so a resumed campaign re-folds exactly the fields the first
// life saw.

// campaignEvent is one line of the campaign journal. Event is one of
// created, member (submitted, carries the job ID), member_done,
// member_skip, done, failed, canceled.
type campaignEvent struct {
	Time     time.Time     `json:"t"`
	Event    string        `json:"event"`
	Campaign string        `json:"campaign"`
	Spec     *CampaignSpec `json:"spec,omitempty"`
	Member   int           `json:"member"`
	Job      string        `json:"job,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// journal is the durable append-only campaign log.
type journal struct {
	mu sync.Mutex
	f  *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{f: f}, nil
}

func (jl *journal) append(ev campaignEvent) error {
	line, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, err := jl.f.Write(line); err != nil {
		return err
	}
	return jl.f.Sync()
}

func (jl *journal) Close() error {
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f.Close()
}

// readJournal loads every event; a missing file is an empty journal and a
// torn final line (the crash window of append) is dropped.
func readJournal(path string) ([]campaignEvent, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var events []campaignEvent
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var badLine error
	for sc.Scan() {
		if badLine != nil {
			return nil, badLine // malformed line was NOT the last one
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev campaignEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			badLine = fmt.Errorf("ensemble: journal %s: line %d: %w", path, len(events)+1, err)
			continue
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ensemble: journal %s: %w", path, err)
	}
	return events, nil
}

// campaignRecord is the folded per-campaign outcome of a journal replay.
type campaignRecord struct {
	id    string
	spec  *CampaignSpec
	state string // last lifecycle event: created, done, failed, canceled
	// jobs maps member index -> last submitted job ID.
	jobs map[int]string
	// done members have their fields persisted; skipped members failed.
	done    map[int]bool
	skipped map[int]string
}

func (r *campaignRecord) terminal() bool {
	switch r.state {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

// replayJournal folds events into per-campaign records in first-seen order.
func replayJournal(events []campaignEvent) []*campaignRecord {
	byID := make(map[string]*campaignRecord)
	var order []*campaignRecord
	for _, ev := range events {
		rec, ok := byID[ev.Campaign]
		if !ok {
			rec = &campaignRecord{
				id:      ev.Campaign,
				state:   "created",
				jobs:    make(map[int]string),
				done:    make(map[int]bool),
				skipped: make(map[int]string),
			}
			byID[ev.Campaign] = rec
			order = append(order, rec)
		}
		switch ev.Event {
		case "created":
			if ev.Spec != nil {
				rec.spec = ev.Spec
			}
		case "member":
			rec.jobs[ev.Member] = ev.Job
		case "member_done":
			rec.done[ev.Member] = true
		case "member_skip":
			rec.skipped[ev.Member] = ev.Error
		case "done", "failed", "canceled":
			rec.state = ev.Event
		}
	}
	return order
}

// compactJournal atomically rewrites the journal to just the live
// campaigns: the created event plus each member's last known outcome, so
// the file stays bounded across restarts.
func compactJournal(path string, live []*campaignRecord, now time.Time) error {
	var buf bytes.Buffer
	write := func(ev campaignEvent) error {
		ev.Time = now
		line, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
		return nil
	}
	for _, rec := range live {
		if err := write(campaignEvent{Event: "created", Campaign: rec.id, Spec: rec.spec}); err != nil {
			return err
		}
		for _, idx := range sortedKeys(rec.jobs) {
			if err := write(campaignEvent{Event: "member", Campaign: rec.id, Member: idx, Job: rec.jobs[idx]}); err != nil {
				return err
			}
		}
		for _, idx := range sortedKeys(rec.done) {
			if err := write(campaignEvent{Event: "member_done", Campaign: rec.id, Member: idx}); err != nil {
				return err
			}
		}
		for _, idx := range sortedKeys(rec.skipped) {
			if err := write(campaignEvent{Event: "member_skip", Campaign: rec.id, Member: idx, Error: rec.skipped[idx]}); err != nil {
				return err
			}
		}
	}
	return atomicio.WriteFileBytes(path, buf.Bytes())
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// campSeq extracts the sequence number from a "camp-%06d" ID (0 if
// malformed).
func campSeq(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "camp-"))
	return n
}
