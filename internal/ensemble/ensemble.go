// Package ensemble is the campaign orchestrator: it turns one scenario
// plus sweep axes into a batch of related simulation jobs, drives them
// through the internal/service job service with bounded concurrency, and
// folds the members' surface PGV fields into streaming hazard statistics
// as they complete — mean and standard-deviation maps, per-threshold
// exceedance probabilities, and percentile intensity maps.
//
// A single deterministic run is the weakest form of hazard; production
// systems run ensembles of stochastic velocity realizations and parameter
// variations and report statistics. The campaign subsystem makes that a
// first-class workload: CampaignSpec expands deterministically into member
// JobSpecs (so a journaled spec is enough to rebuild the whole campaign),
// the scheduler inherits the job service's durability/retry/cancellation
// semantics, and the aggregate's fold order is pinned to the member index
// (seismo.OrderedFold), so the final statistics are bit-identical no
// matter in which order the members happen to finish — or whether the
// daemon restarted halfway through.
package ensemble

import (
	"errors"
	"fmt"
	"time"

	"swquake/internal/scenario"
	"swquake/internal/service"
)

// Sentinel errors of the campaign API.
var (
	// ErrUnknownCampaign is returned for IDs the manager has never issued.
	ErrUnknownCampaign = errors.New("ensemble: unknown campaign")
	// ErrClosed is returned by Create after Drain has begun.
	ErrClosed = errors.New("ensemble: draining, not accepting campaigns")
)

// State is a campaign's lifecycle state.
type State string

const (
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether a campaign in this state will never change.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// SeedAxis sweeps stochastic velocity-heterogeneity realizations: members
// get seeds Base, Base+1, ..., Base+Count-1 with the given perturbation
// amplitude (scenario.Overrides het fields, applied via
// model.Heterogeneous).
type SeedAxis struct {
	// Base is the first seed of the sweep.
	Base int64 `json:"base,omitempty"`
	// Count is the number of seed realizations (0 = no seed axis).
	Count int `json:"count,omitempty"`
	// HetAmplitude is the RMS fractional velocity perturbation for every
	// realization (falls back to the campaign base overrides' value).
	HetAmplitude float64 `json:"het_amplitude,omitempty"`
	// HetCorrLen is the correlation length in meters (0 = scenario default).
	HetCorrLen float64 `json:"het_corr_len,omitempty"`
}

// CampaignSpec declares an ensemble campaign: a base scenario plus axes
// that expand deterministically into member jobs. The expansion order —
// parameter variations outer, seeds inner — defines the member index,
// which in turn fixes the aggregation order.
type CampaignSpec struct {
	// Name is a human label for the campaign (optional).
	Name string `json:"name,omitempty"`
	// Scenario is the base scenario every member runs (scenario.Names).
	Scenario string `json:"scenario"`
	// Base overrides apply to every member.
	Base scenario.Overrides `json:"base,omitempty"`
	// Variations is the parameter-grid axis: each entry is overlaid on
	// Base (non-zero fields win) to form one variation. Empty means one
	// variation, the base itself. Variations may not change the surface
	// grid (nx/ny): every member must produce the same map shape.
	Variations []scenario.Overrides `json:"variations,omitempty"`
	// Seeds is the stochastic-realization axis, crossed with Variations.
	Seeds SeedAxis `json:"seeds,omitempty"`

	// MX, MY select the simulated-MPI layout for every member job.
	MX int `json:"mx,omitempty"`
	MY int `json:"my,omitempty"`
	// TimeoutS is the per-member job deadline in seconds (0 = service
	// default).
	TimeoutS float64 `json:"timeout_s,omitempty"`
	// MaxConcurrent bounds how many members run at once (0 = manager
	// default). The job service's own queue and worker pool still apply.
	MaxConcurrent int `json:"max_concurrent,omitempty"`

	// Thresholds are the PGV levels (m/s) of the exceedance-probability
	// maps (empty = DefaultThresholds).
	Thresholds []float64 `json:"thresholds,omitempty"`
	// Percentiles are the per-cell quantiles reported in the aggregate
	// (empty = DefaultPercentiles).
	Percentiles []float64 `json:"percentiles,omitempty"`
}

// DefaultThresholds are the exceedance PGV levels (m/s) used when a spec
// names none — roughly Chinese intensities VI through IX.
var DefaultThresholds = []float64{0.05, 0.1, 0.2, 0.5}

// DefaultPercentiles are the aggregate quantiles used when a spec names
// none: the median and the one-sigma (84th percentile) hazard maps.
var DefaultPercentiles = []float64{0.5, 0.84}

// MaxMembers caps a campaign's expansion.
const MaxMembers = 1024

// Members reports how many member jobs the spec expands into.
func (cs CampaignSpec) Members() int {
	nv := len(cs.Variations)
	if nv == 0 {
		nv = 1
	}
	ns := cs.Seeds.Count
	if ns == 0 {
		ns = 1
	}
	return nv * ns
}

// normalized validates the spec and fills defaults, returning the
// canonical form Create journals (so a replayed campaign sees exactly the
// defaults the original run used).
func (cs CampaignSpec) normalized(defaultConcurrent int) (CampaignSpec, error) {
	if cs.Scenario == "" {
		return cs, fmt.Errorf("ensemble: campaign names no scenario")
	}
	n := cs.Members()
	if n > MaxMembers {
		return cs, fmt.Errorf("ensemble: campaign expands to %d members (max %d)", n, MaxMembers)
	}
	if cs.Seeds.Count < 0 {
		return cs, fmt.Errorf("ensemble: negative seed count %d", cs.Seeds.Count)
	}
	if cs.Seeds.Count > 1 && cs.Seeds.HetAmplitude <= 0 && cs.Base.HetAmplitude <= 0 {
		return cs, fmt.Errorf("ensemble: a %d-seed sweep needs het_amplitude > 0 — otherwise every member is the same simulation", cs.Seeds.Count)
	}
	for i, v := range cs.Variations {
		if v.Nx != 0 || v.Ny != 0 {
			return cs, fmt.Errorf("ensemble: variation %d changes the surface grid (nx/ny); member maps must share one shape", i)
		}
		if v.Seed != 0 || v.HetAmplitude != 0 || v.HetCorrLen != 0 {
			return cs, fmt.Errorf("ensemble: variation %d sets seed/heterogeneity fields; use the seeds axis", i)
		}
	}
	for i, p := range cs.Percentiles {
		if p < 0 || p > 1 {
			return cs, fmt.Errorf("ensemble: percentile %d = %g outside [0, 1]", i, p)
		}
	}
	if cs.MaxConcurrent <= 0 {
		cs.MaxConcurrent = defaultConcurrent
	}
	if len(cs.Thresholds) == 0 {
		cs.Thresholds = append([]float64(nil), DefaultThresholds...)
	}
	if len(cs.Percentiles) == 0 {
		cs.Percentiles = append([]float64(nil), DefaultPercentiles...)
	}
	// every member spec must actually build: catch bad scenario names and
	// invalid override combinations at Create time, not mid-campaign
	specs, err := cs.Expand()
	if err != nil {
		return cs, err
	}
	for i, sp := range specs {
		if _, err := scenario.Build(sp.Scenario, sp.Overrides); err != nil {
			return cs, fmt.Errorf("ensemble: member %d does not build: %w", i, err)
		}
	}
	return cs, nil
}

// Expand returns the member job specs in canonical member-index order:
// parameter variations outer, heterogeneity seeds inner. The expansion is
// deterministic, so a journaled CampaignSpec is the complete durable form
// of a campaign.
func (cs CampaignSpec) Expand() ([]service.JobSpec, error) {
	variations := cs.Variations
	if len(variations) == 0 {
		variations = []scenario.Overrides{{}}
	}
	seeds := cs.Seeds.Count
	if seeds == 0 {
		seeds = 1
	}
	out := make([]service.JobSpec, 0, len(variations)*seeds)
	for _, v := range variations {
		o := overlay(cs.Base, v)
		for s := 0; s < seeds; s++ {
			mo := o
			if cs.Seeds.Count > 0 {
				mo.Seed = cs.Seeds.Base + int64(s)
				if cs.Seeds.HetAmplitude > 0 {
					mo.HetAmplitude = cs.Seeds.HetAmplitude
				}
				if cs.Seeds.HetCorrLen > 0 {
					mo.HetCorrLen = cs.Seeds.HetCorrLen
				}
			}
			out = append(out, service.JobSpec{
				Scenario:  cs.Scenario,
				Overrides: mo,
				MX:        cs.MX,
				MY:        cs.MY,
				TimeoutS:  cs.TimeoutS,
			})
		}
	}
	return out, nil
}

// overlay applies a variation on top of base overrides: non-zero fields
// of v win, zero fields keep the base.
func overlay(base, v scenario.Overrides) scenario.Overrides {
	o := base
	if v.Nx != 0 {
		o.Nx = v.Nx
	}
	if v.Ny != 0 {
		o.Ny = v.Ny
	}
	if v.Nz != 0 {
		o.Nz = v.Nz
	}
	if v.Dx != 0 {
		o.Dx = v.Dx
	}
	if v.Steps != 0 {
		o.Steps = v.Steps
	}
	if v.Nonlinear {
		o.Nonlinear = true
	}
	if v.Qs != 0 {
		o.Qs = v.Qs
	}
	if v.QVsScaled {
		o.QVsScaled = true
	}
	if v.Tiles != 0 {
		o.Tiles = v.Tiles
	}
	if v.Overlap {
		o.Overlap = true
	}
	if v.HetAmplitude != 0 {
		o.HetAmplitude = v.HetAmplitude
	}
	if v.HetCorrLen != 0 {
		o.HetCorrLen = v.HetCorrLen
	}
	if v.Seed != 0 {
		o.Seed = v.Seed
	}
	return o
}

// MemberStatus is one member's place in the campaign.
type MemberStatus struct {
	Index int `json:"index"`
	// Job is the job-service ID once the member has been submitted.
	Job string `json:"job,omitempty"`
	// State mirrors the job state; "pending" before submission, "skipped"
	// for members dropped from the aggregate after a permanent failure.
	State string `json:"state"`
}

// Status is a point-in-time snapshot of a campaign.
type Status struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Scenario string `json:"scenario"`
	State    State  `json:"state"`

	Members int `json:"members"`
	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
	// Folded counts members already in the aggregate (<= Done: folding
	// waits for the lowest unfinished index so the merge order is fixed).
	Folded int `json:"folded"`

	// Recovered marks a campaign resumed from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`

	MemberJobs []MemberStatus `json:"member_jobs,omitempty"`

	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished"`
	Error    string    `json:"error,omitempty"`
}
