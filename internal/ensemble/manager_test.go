package ensemble

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"swquake/internal/scenario"
	"swquake/internal/seismo"
	"swquake/internal/service"
	"swquake/internal/telemetry"
)

// sweepSpec is a fast quickstart seed sweep.
func sweepSpec(steps, seeds int) CampaignSpec {
	return CampaignSpec{
		Name:     "test sweep",
		Scenario: "quickstart",
		Base:     scenario.Overrides{Steps: steps},
		Seeds:    SeedAxis{Base: 1, Count: seeds, HetAmplitude: 0.05},
	}
}

func drainAll(t *testing.T, m *Manager, s *service.Service) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("manager drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("service drain: %v", err)
	}
}

func waitCampaign(t *testing.T, m *Manager, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := m.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

// referenceAggregate runs the campaign's members one at a time on a fresh
// service and folds them sequentially in member-index order — the serial
// computation the concurrent campaign must reproduce bit for bit.
func referenceAggregate(t *testing.T, spec CampaignSpec) *seismo.FieldStats {
	t.Helper()
	norm, err := spec.normalized(2)
	if err != nil {
		t.Fatal(err)
	}
	members, err := norm.Expand()
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Options{Workers: 1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		svc.Drain(ctx)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	var stats *seismo.FieldStats
	for i, sp := range members {
		cfg, err := scenario.Build(sp.Scenario, sp.Overrides)
		if err != nil {
			t.Fatalf("member %d: %v", i, err)
		}
		id, err := svc.Submit(service.Request{Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if st, err := svc.Wait(ctx, id); err != nil || st.State != service.StateDone {
			t.Fatalf("reference member %d: %+v %v", i, st, err)
		}
		res, err := svc.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if res.PGV == nil {
			t.Fatalf("reference member %d has no PGV field", i)
		}
		if stats == nil {
			stats = seismo.NewFieldStats(res.PGV.Nx, res.PGV.Ny, norm.Thresholds)
		}
		if err := stats.Add(res.PGV.Values); err != nil {
			t.Fatal(err)
		}
	}
	return stats
}

// bitEqual compares float slices for exact bit equality.
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestCampaignEndToEndBitIdentical(t *testing.T) {
	svc := service.New(service.Options{Workers: 2})
	m, err := Open(Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	spec := sweepSpec(20, 3)
	spec.MaxConcurrent = 3 // members finish out of order; the fold must not care
	st, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "camp-000001" || st.Members != 3 || st.State != StateRunning {
		t.Fatalf("created status %+v", st)
	}

	final := waitCampaign(t, m, st.ID)
	if final.State != StateDone || final.Done != 3 || final.Folded != 3 || final.Failed != 0 {
		t.Fatalf("final status %+v", final)
	}
	for i, ms := range final.MemberJobs {
		if ms.Job == "" || ms.State != string(service.StateDone) {
			t.Fatalf("member %d: %+v", i, ms)
		}
	}

	agg, err := m.Aggregate(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Members != 3 || agg.Folded != 3 || agg.Nx == 0 || agg.Ny == 0 {
		t.Fatalf("aggregate %+v", agg)
	}
	if len(agg.ExceedProb) != len(DefaultThresholds) || len(agg.PercentilePGV) != len(DefaultPercentiles) {
		t.Fatalf("aggregate maps: %d exceed, %d percentile", len(agg.ExceedProb), len(agg.PercentilePGV))
	}
	if agg.MeanPGVMax <= 0 || agg.MeanIntensityMax <= 0 {
		t.Fatalf("headline numbers %g / %g", agg.MeanPGVMax, agg.MeanIntensityMax)
	}

	// the concurrent campaign must reproduce the serial fold bit for bit
	ref := referenceAggregate(t, spec)
	if !bitEqual(agg.MeanPGV, ref.Mean()) {
		t.Fatal("mean PGV differs from serial reference")
	}
	if !bitEqual(agg.StdPGV, ref.Std()) {
		t.Fatal("std PGV differs from serial reference")
	}
	for k := range agg.ExceedProb {
		if !bitEqual(agg.ExceedProb[k], ref.ExceedProb()[k]) {
			t.Fatalf("exceedance map %d differs from serial reference", k)
		}
	}

	mt := m.Metrics()
	if mt.Created != 1 || mt.Done != 1 || mt.MembersSubmitted != 3 || mt.MembersFolded != 3 {
		t.Fatalf("metrics %+v", mt)
	}
	if mt.Running != 0 || mt.MembersInflight != 0 {
		t.Fatalf("gauges nonzero after completion: %+v", mt)
	}

	// the prom families render
	reg := telemetry.NewPromRegistry()
	m.RegisterProm(reg)
	var sb strings.Builder
	if err := reg.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"swquake_campaigns_created_total 1",
		"swquake_campaigns_done_total 1",
		"swquake_campaign_members_done_total 3",
		"swquake_campaigns_running 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("prom output missing %q:\n%s", want, sb.String())
		}
	}

	drainAll(t, m, svc)
}

func TestCreateValidatesSpec(t *testing.T) {
	svc := service.New(service.Options{Workers: 1})
	m, err := Open(Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(CampaignSpec{Scenario: "quickstart", Seeds: SeedAxis{Count: 4}}); err == nil {
		t.Fatal("seed sweep without amplitude accepted")
	}
	if got := m.List(); len(got) != 0 {
		t.Fatalf("rejected campaign registered: %+v", got)
	}
	if _, err := m.Status("camp-000099"); !errors.Is(err, ErrUnknownCampaign) {
		t.Fatalf("unknown campaign error %v", err)
	}
	drainAll(t, m, svc)
}

func TestCampaignCancelStopsMembers(t *testing.T) {
	svc := service.New(service.Options{Workers: 1})
	m, err := Open(Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	spec := sweepSpec(200000, 3) // far too slow to finish
	spec.MaxConcurrent = 1
	st, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	// let member 0 actually start
	deadline := time.Now().Add(20 * time.Second)
	for {
		cur, err := m.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Running > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never started a member: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !m.Cancel(st.ID) {
		t.Fatal("cancel returned false")
	}
	final := waitCampaign(t, m, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel: %+v", final)
	}
	if m.Cancel("camp-000099") {
		t.Fatal("cancel of unknown campaign succeeded")
	}
	drainAll(t, m, svc)
}

func TestCampaignFailedMembersSkip(t *testing.T) {
	svc := service.New(service.Options{Workers: 1})
	m, err := Open(Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	spec := sweepSpec(200000, 2)
	spec.TimeoutS = 0.05 // every member times out
	st, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitCampaign(t, m, st.ID)
	if final.State != StateFailed || final.Failed != 2 || final.Folded != 0 {
		t.Fatalf("final status %+v", final)
	}
	if final.Error == "" {
		t.Fatal("failed campaign reports no error")
	}
	// the aggregate is metadata-only but well-formed
	agg, err := m.Aggregate(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if agg.State != StateFailed || agg.Skipped != 2 || agg.Folded != 0 || agg.MeanPGV != nil {
		t.Fatalf("aggregate %+v", agg)
	}
	if mt := m.Metrics(); mt.MembersFailed != 2 || mt.Failed != 1 {
		t.Fatalf("metrics %+v", mt)
	}
	drainAll(t, m, svc)
}

func TestDrainRejectsNewCampaigns(t *testing.T) {
	svc := service.New(service.Options{Workers: 1})
	m, err := Open(Options{Service: svc})
	if err != nil {
		t.Fatal(err)
	}
	drainAll(t, m, svc)
	if _, err := m.Create(sweepSpec(5, 2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after drain: %v", err)
	}
}
