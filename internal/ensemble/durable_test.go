package ensemble

import (
	"context"
	"testing"
	"time"

	"swquake/internal/manifest"
	"swquake/internal/service"
)

// TestDurableCampaignSurvivesRestartBitIdentical is the subsystem's
// acceptance test: a durable campaign is cut down mid-flight (manager and
// service both stopped with an expired deadline, the moral equivalent of
// a SIGKILL), rebooted, and must finish with an aggregate bit-identical
// to the serial reference — folded members re-fold from their persisted
// fields, the in-flight member resumes inside the job service, and the
// rest run fresh.
func TestDurableCampaignSurvivesRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	svc, err := service.Open(service.Options{Workers: 1, DataDir: dir, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(Options{Service: svc, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}

	spec := sweepSpec(40, 4)
	spec.MaxConcurrent = 1 // members run strictly one after another
	st, err := m.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID

	// wait until at least one member has folded but the campaign is not done
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur, err := m.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if cur.Folded >= 1 && cur.Folded < 4 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("campaign finished before the kill: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never folded a member: %+v", cur)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// hard shutdown: expired deadlines park the in-flight member (manager)
	// and the running job (service) without journaling anything terminal
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	cancel()
	m.Drain(expired)
	svc.Drain(expired)

	// reboot: the service requeues the parked member job, the manager
	// re-folds the persisted fields and re-attaches to the recovered job
	svc2, err := service.Open(service.Options{Workers: 1, DataDir: dir, CheckpointEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Service: svc2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if mt := m2.Metrics(); mt.Recovered != 1 {
		t.Fatalf("recovered %d campaigns, want 1", mt.Recovered)
	}
	st2, err := m2.Status(id)
	if err != nil {
		t.Fatalf("recovered campaign lost: %v", err)
	}
	if !st2.Recovered {
		t.Fatalf("campaign not flagged recovered: %+v", st2)
	}

	final := waitCampaign(t, m2, id)
	if final.State != StateDone || final.Folded != 4 || final.Failed != 0 {
		t.Fatalf("final status %+v", final)
	}

	agg, err := m2.Aggregate(id)
	if err != nil {
		t.Fatal(err)
	}
	ref := referenceAggregate(t, spec)
	if !bitEqual(agg.MeanPGV, ref.Mean()) {
		t.Fatal("mean PGV after restart differs from serial reference")
	}
	if !bitEqual(agg.StdPGV, ref.Std()) {
		t.Fatal("std PGV after restart differs from serial reference")
	}
	for k := range agg.ExceedProb {
		if !bitEqual(agg.ExceedProb[k], ref.ExceedProb()[k]) {
			t.Fatalf("exceedance map %d after restart differs from serial reference", k)
		}
	}

	// the finished campaign left a manifest next to its state
	cm, err := manifest.LoadCampaign(m2.stateDir(id) + "/manifest.json")
	if err != nil {
		t.Fatalf("campaign manifest: %v", err)
	}
	if cm.ID != id || cm.State != string(StateDone) || cm.Folded != 4 || len(cm.MemberJobs) != 4 {
		t.Fatalf("manifest %+v", cm)
	}
	if cm.MeanPGVMax != agg.MeanPGVMax {
		t.Fatalf("manifest headline %g vs aggregate %g", cm.MeanPGVMax, agg.MeanPGVMax)
	}

	drainAll(t, m2, svc2)

	// a third boot sees a terminal campaign: nothing to recover, and the
	// compacted journal stays quiet about it
	svc3, err := service.Open(service.Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m3, err := Open(Options{Service: svc3, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if mt := m3.Metrics(); mt.Recovered != 0 {
		t.Fatalf("terminal campaign recovered again: %+v", mt)
	}
	drainAll(t, m3, svc3)
}

// TestDurableCreateSurvivesImmediateKill: a campaign killed before any
// member finished must resume from just the journaled spec.
func TestDurableCreateSurvivesImmediateKill(t *testing.T) {
	dir := t.TempDir()
	svc, err := service.Open(service.Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Open(Options{Service: svc, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Create(sweepSpec(15, 2))
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	cancel()
	m.Drain(expired)
	svc.Drain(expired)

	svc2, err := service.Open(service.Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Open(Options{Service: svc2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	final := waitCampaign(t, m2, st.ID)
	if final.State != StateDone || final.Folded != 2 {
		t.Fatalf("final status %+v", final)
	}
	// ID sequence continues past the recovered campaign
	st2, err := m2.Create(sweepSpec(5, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID != "camp-000002" {
		t.Fatalf("next campaign ID %s", st2.ID)
	}
	waitCampaign(t, m2, st2.ID)
	drainAll(t, m2, svc2)
}
