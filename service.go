package swquake

import (
	"swquake/internal/service"
)

// JobService is the simulation job service: a bounded submission queue in
// front of a worker pool that drives the step-pipeline engine, with per-job
// cancellation and deadlines, live progress, a scenario-keyed result cache
// and expvar metrics. The implementation lives in internal/service; the
// quaked daemon (cmd/quaked) is its HTTP face.
type JobService = service.Service

// JobRequest describes one simulation job: the configuration to solve, an
// optional simulated-MPI process grid, and an optional deadline.
type JobRequest = service.Request

// JobOptions sizes a JobService (workers, queue bound, cache entries).
type JobOptions = service.Options

// JobStatus is a job's externally visible state and progress.
type JobStatus = service.Status

// JobState enumerates the job lifecycle (queued, running, done, failed,
// canceled).
type JobState = service.State

// JobResult is a finished job's payload: the RunManifest summary plus the
// recorded station traces.
type JobResult = service.Result

// Sentinel errors a JobService returns from Submit and Result.
var (
	ErrJobQueueFull   = service.ErrQueueFull
	ErrServiceClosed  = service.ErrClosed
	ErrUnknownJob     = service.ErrUnknownJob
	ErrJobNotFinished = service.ErrNotFinished
)

// NewJobService starts a job service with the given options.
func NewJobService(opts JobOptions) *JobService {
	return service.New(opts)
}

// ConfigKey returns the canonical SHA-256 hash identifying the simulation a
// Config describes. Two configs that validate to the same simulation hash
// identically; the job service uses it as the result-cache key.
func ConfigKey(cfg Config) (string, error) {
	return service.ConfigKey(cfg)
}
