package swquake

// One benchmark per paper table and figure (regenerating the corresponding
// rows/series via internal/experiments), plus microbenchmarks of the
// performance-critical kernels and codecs, and ablation benches for the
// design choices DESIGN.md calls out. Run everything with
//
//	go test -bench=. -benchmem
//
// The Table/Fig benches report paper-relevant metrics (Pflops, speedups,
// misfits) through b.ReportMetric so the bench log doubles as the
// reproduction record.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"swquake/internal/cgexec"
	"swquake/internal/compress"
	"swquake/internal/core"
	"swquake/internal/experiments"
	"swquake/internal/f16"
	"swquake/internal/fd"
	"swquake/internal/grid"
	"swquake/internal/ldm"
	"swquake/internal/lz4"
	"swquake/internal/model"
	"swquake/internal/perfmodel"
	"swquake/internal/plasticity"
	"swquake/internal/seismo"
	"swquake/internal/sunway"
)

// --- Tables ---

func BenchmarkTable1Systems(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = experiments.Table1(io.Discard)
	}
	b.ReportMetric(ratio, "titan-vs-taihu-byte/flop")
}

func BenchmarkTable3DMA(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3(io.Discard)
	}
	b.ReportMetric(rows[len(rows)-1].Get4, "GB/s-get-2048B-4CG")
	b.ReportMetric(rows[0].Get1, "GB/s-get-32B-1CG")
}

func BenchmarkTable4Utilization(b *testing.B) {
	var rows []perfmodel.Table4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table4(io.Discard)
	}
	for _, r := range rows {
		if r.Name == "Computing Performance" {
			b.ReportMetric(r.Effective, "Gflops/CG")
			b.ReportMetric(100*r.Effective/r.Peak, "%-of-CG-peak")
		}
	}
}

// --- Figures ---

func BenchmarkFig6CompressionValidation(b *testing.B) {
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig6(io.Discard, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Misfit["Ninghe"], "%-misfit-Ninghe")
	b.ReportMetric(100*res.Misfit["Cangzhou"], "%-misfit-Cangzhou")
}

func BenchmarkFig7Kernels(b *testing.B) {
	var sp map[string]map[string]float64
	for i := 0; i < b.N; i++ {
		sp = experiments.Fig7(io.Discard)
	}
	b.ReportMetric(sp["delcx"]["CMPR"], "x-speedup-delcx")
	b.ReportMetric(sp["dstrqc"]["CMPR"], "x-speedup-dstrqc")
	b.ReportMetric(sp["fstr"]["CMPR"], "x-speedup-fstr")
}

func BenchmarkFig8WeakScaling(b *testing.B) {
	var pts []experiments.Fig8Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Fig8(io.Discard)
	}
	last := pts[len(pts)-1]
	b.ReportMetric(last.Pflops["nonlinear+compress"], "Pflops-nl+c-160K")
	b.ReportMetric(last.Pflops["nonlinear"], "Pflops-nl-160K")
	b.ReportMetric(last.Pflops["linear"], "Pflops-lin-160K")
}

func BenchmarkFig9StrongScaling(b *testing.B) {
	var series []experiments.Fig9Series
	for i := 0; i < b.N; i++ {
		series = experiments.Fig9(io.Discard)
	}
	for _, s := range series {
		if s.Case == "nonlinear" && s.Mesh == "dx=16m" {
			b.ReportMetric(s.Speedups[160000], "x-speedup-dx16m-160K")
		}
	}
}

func BenchmarkFig10Rupture(b *testing.B) {
	var res *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig10(io.Discard, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.RupturedFraction, "%-fault-ruptured")
	b.ReportMetric(res.RuptureSpeed, "m/s-rupture-speed")
}

func BenchmarkFig11Resolution(b *testing.B) {
	var res *experiments.Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig11(io.Discard, experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FineRoughness["Ninghe"]/maxF(res.CoarseRoughness["Ninghe"], 1e-30), "x-hf-content-gain")
	b.ReportMetric(100*res.IntensityChanged, "%-intensity-cells-changed")
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// --- Solver kernel microbenchmarks ---

func benchWavefield(d grid.Dims) (*fd.Wavefield, *fd.Medium) {
	wf := fd.NewWavefield(d)
	med := fd.NewMedium(d)
	mat := model.Material{Vp: 5000, Vs: 2887, Rho: 2700}
	lam, mu := mat.Lame()
	med.Rho.Fill(float32(mat.Rho))
	med.Lam.Fill(float32(lam))
	med.Mu.Fill(float32(mu))
	rng := rand.New(rand.NewSource(1))
	for _, f := range wf.AllFields() {
		for i := range f.Data {
			f.Data[i] = rng.Float32()*2 - 1
		}
	}
	return wf, med
}

func BenchmarkKernelVelocity(b *testing.B) {
	d := grid.Dims{Nx: 48, Ny: 48, Nz: 48}
	wf, med := benchWavefield(d)
	b.SetBytes(int64(d.Points()) * 13 * 4) // 10 reads + 3 writes per point
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.UpdateVelocity(wf, med, 0.001, 0, d.Nz)
	}
	b.ReportMetric(float64(d.Points())*float64(b.N)*fd.VelocityFlopsPerPoint/b.Elapsed().Seconds()/1e9, "Gflops")
}

func BenchmarkKernelStress(b *testing.B) {
	d := grid.Dims{Nx: 48, Ny: 48, Nz: 48}
	wf, med := benchWavefield(d)
	b.SetBytes(int64(d.Points()) * 17 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.UpdateStress(wf, med, 0.001, 0, d.Nz)
	}
	b.ReportMetric(float64(d.Points())*float64(b.N)*fd.StressFlopsPerPoint/b.Elapsed().Seconds()/1e9, "Gflops")
}

func BenchmarkKernelPlasticity(b *testing.B) {
	d := grid.Dims{Nx: 48, Ny: 48, Nz: 48}
	wf, _ := benchWavefield(d)
	p := plasticity.NewParams(d)
	p.SetUniform(1e5, 0.5236, 0)
	p.SetLithostatic(100, 2500)
	b.SetBytes(int64(d.Points()) * 13 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plasticity.Apply(wf, p, 0.005, 0, d.Nz)
	}
}

func BenchmarkKernelFreeSurface(b *testing.B) {
	d := grid.Dims{Nx: 96, Ny: 96, Nz: 24}
	wf, _ := benchWavefield(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.ApplyFreeSurface(wf)
	}
}

func BenchmarkFullStepLinear(b *testing.B) {
	d := grid.Dims{Nx: 48, Ny: 48, Nz: 48}
	wf, med := benchWavefield(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.Step(wf, med, 0.0005)
	}
	pts := float64(d.Points()) * float64(b.N)
	b.ReportMetric(pts/b.Elapsed().Seconds()/1e6, "Mpoints/s")
}

// --- Codec microbenchmarks (the on-the-fly compression cost, §6.5) ---

func codecInput(n int) []float32 {
	rng := rand.New(rand.NewSource(2))
	out := make([]float32, n)
	for i := range out {
		out[i] = rng.Float32()*2 - 1
	}
	return out
}

func BenchmarkCodecNormalizedEncode(b *testing.B) {
	src := codecInput(1 << 16)
	dst := make([]uint16, len(src))
	c := f16.NewNormalizedCodec(-1, 1)
	b.SetBytes(int64(len(src)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeSlice(dst, src)
	}
}

func BenchmarkCodecNormalizedDecode(b *testing.B) {
	src := codecInput(1 << 16)
	enc := make([]uint16, len(src))
	dec := make([]float32, len(src))
	c := f16.NewNormalizedCodec(-1, 1)
	c.EncodeSlice(enc, src)
	b.SetBytes(int64(len(src)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.DecodeSlice(dec, enc)
	}
}

func BenchmarkCodecAdaptiveEncode(b *testing.B) {
	src := codecInput(1 << 16)
	dst := make([]uint16, len(src))
	c := f16.NewAdaptiveCodecRange(-10, 2)
	b.SetBytes(int64(len(src)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeSlice(dst, src)
	}
}

func BenchmarkCodecHalfEncode(b *testing.B) {
	src := codecInput(1 << 16)
	dst := make([]uint16, len(src))
	b.SetBytes(int64(len(src)) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f16.EncodeSlice(dst, src)
	}
}

// --- LZ4 (checkpoint compression) ---

func BenchmarkLZ4CompressWavefield(b *testing.B) {
	// checkpoint-like payload: a smooth wavefield serialized to bytes
	d := grid.Dims{Nx: 32, Ny: 32, Nz: 32}
	wf, med := benchWavefield(d)
	for i := 0; i < 20; i++ {
		fd.Step(wf, med, 0.0005) // smooth it out
	}
	raw := make([]byte, 0, len(wf.U.Data)*4)
	for _, v := range wf.U.Data {
		bits := uint32(v)
		raw = append(raw, byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24))
	}
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lz4.CompressAlloc(raw)
	}
}

func BenchmarkLZ4Decompress(b *testing.B) {
	src := make([]byte, 1<<20)
	for i := range src {
		src[i] = byte(i / 64) // compressible
	}
	comp := lz4.CompressAlloc(src)
	dst := make([]byte, len(src))
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lz4.Decompress(dst, comp); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices from DESIGN.md §4) ---

// BenchmarkAblationArrayFusion quantifies §6.4's array fusion: predicted
// DMA time per point with the ten unfused arrays vs the fused vec3/vec6
// layout, through the LDM blocking model.
func BenchmarkAblationArrayFusion(b *testing.B) {
	var unfused, fused ldm.Config
	for i := 0; i < b.N; i++ {
		var err error
		unfused, err = ldm.Optimize(ldm.DelcUnfused(), 160, 512, sunway.LDMBytes)
		if err != nil {
			b.Fatal(err)
		}
		fused, err = ldm.Optimize(ldm.DelcFused(), 160, 512, sunway.LDMBytes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(unfused.EffBWGBs, "GB/s-unfused")
	b.ReportMetric(fused.EffBWGBs, "GB/s-fused")
	b.ReportMetric(fused.EffBWGBs/unfused.EffBWGBs, "x-fusion-gain")
}

// BenchmarkAblationBlockingCz quantifies the Cz=1 choice of §6.4: the
// predicted DMA time of the optimizer's Cz=1 layout vs a forced Cz=8.
func BenchmarkAblationBlockingCz(b *testing.B) {
	shape := ldm.DelcFused()
	var best ldm.Config
	for i := 0; i < b.N; i++ {
		var err error
		best, err = ldm.Optimize(shape, 160, 512, sunway.LDMBytes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(best.Cz), "chosen-Cz")
	b.ReportMetric(float64(best.Wz), "chosen-Wz")
	b.ReportMetric(float64(best.BlockBytesMax), "B-dma-block")
}

// BenchmarkAblationCompressedStep measures the real cost of the
// decompress-compute-compress workflow vs the plain step on this host
// (the paper's +24% applies on Sunway where memory is the bottleneck; on a
// cache-rich CPU the codec work usually dominates instead).
func BenchmarkAblationCompressedStep(b *testing.B) {
	for _, mode := range []string{"plain", "compressed"} {
		b.Run(mode, func(b *testing.B) {
			cfg := QuickstartConfig()
			cfg.Steps = 1
			if mode == "compressed" {
				stats, err := core.CalibrateCompression(cfg, 2)
				if err != nil {
					b.Fatal(err)
				}
				cfg.Compression = core.CompressionConfig{Method: compress.Normalized, Stats: stats}
			}
			sim, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
			b.ReportMetric(float64(cfg.Dims.Points())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
		})
	}
}

// BenchmarkAblationHaloExchange measures the simulated-MPI halo exchange
// overhead: serial vs 2x2 decomposed runs of the same problem.
func BenchmarkAblationHaloExchange(b *testing.B) {
	cfg := QuickstartConfig()
	cfg.Steps = 10
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mpi2x2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.RunParallel(cfg, 2, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCGExecutor measures the tile-by-tile core-group executor (the
// executed form of the Fig. 7 MEM strategy) and reports its simulated
// bandwidth against the blocking-model prediction.
func BenchmarkCGExecutor(b *testing.B) {
	d := grid.Dims{Nx: 24, Ny: 32, Nz: 64}
	wf, med := benchWavefield(d)
	var sim, modeled float64
	for i := 0; i < b.N; i++ {
		ex, err := cgexec.New(d)
		if err != nil {
			b.Fatal(err)
		}
		if err := ex.VelocityStep(wf, med, 0.0005); err != nil {
			b.Fatal(err)
		}
		if err := ex.StressStep(wf, med, 0.0005); err != nil {
			b.Fatal(err)
		}
		sim = ex.Stats.EffectiveBandwidth()
		modeled = ex.Cfg.EffBWGBs
	}
	b.ReportMetric(sim, "GB/s-simulated")
	b.ReportMetric(modeled, "GB/s-modeled")
}

// BenchmarkAblationSlabHeight measures the executed decompress-compute-
// compress step at different z-slab heights (the Fig. 5c buffering choice).
func BenchmarkAblationSlabHeight(b *testing.B) {
	for _, slab := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("slab%d", slab), func(b *testing.B) {
			cfg := QuickstartConfig()
			cfg.Steps = 1
			stats, err := core.CalibrateCompression(cfg, 2)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Compression = core.CompressionConfig{
				Method: compress.Normalized, Stats: stats, SlabHeight: slab,
			}
			sim, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// BenchmarkAblationLayout compares the scalar (structure-of-arrays) kernels
// against the fused (vec3/vec6) kernels on this host — the executed form of
// the paper's array-fusion ablation (on Sunway the win is DMA chunk size;
// on a cache-based CPU it shows up as line utilization).
func BenchmarkAblationLayout(b *testing.B) {
	d := grid.Dims{Nx: 48, Ny: 48, Nz: 48}
	b.Run("scalar", func(b *testing.B) {
		wf, med := benchWavefield(d)
		b.SetBytes(int64(d.Points()) * 13 * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fd.UpdateVelocity(wf, med, 0.0005, 0, d.Nz)
		}
	})
	b.Run("fused", func(b *testing.B) {
		wf, med := benchWavefield(d)
		fw := fd.FuseWavefield(wf)
		b.SetBytes(int64(d.Points()) * 13 * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fd.UpdateVelocityFused(fw, med, 0.0005, 0, d.Nz)
		}
	})
}

// BenchmarkResponseSpectrum measures the Newmark SDOF sweep used for the
// engineering PSA outputs.
func BenchmarkResponseSpectrum(b *testing.B) {
	tr := &seismo.Trace{Dt: 0.01, U: codecInput(2000), V: codecInput(2000), W: codecInput(2000)}
	periods := seismo.StandardPeriods(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ComputeResponseSpectrum(periods, 0.05)
	}
}

// BenchmarkSpectrumDFT measures the plain DFT over a typical trace length.
func BenchmarkSpectrumDFT(b *testing.B) {
	samples := codecInput(512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seismo.AmplitudeSpectrum(samples, 0.01)
	}
}
