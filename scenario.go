package swquake

import (
	"swquake/internal/scenario"
	"swquake/internal/seismo"
)

// QuickstartConfig returns a small, fast configuration: an explosion source
// in a homogeneous half-space with one surface station. It runs in well
// under a second and exercises the full solver loop.
func QuickstartConfig() Config { return scenario.Quickstart() }

// TangshanScenario describes a scaled Tangshan ground-motion run: the
// paper's 320 km x 312 km x 40 km domain shrunk onto a laptop-sized mesh
// while preserving the relative geometry of the fault, the sediment basin
// and the station layout (Ninghe near the fault, Cangzhou far — the two
// stations of Figs. 6 and 11).
type TangshanScenario = scenario.Tangshan

// IntensityFromPGV converts peak ground velocity (m/s) to Chinese seismic
// intensity, the scale of the paper's Fig. 11 hazard maps.
func IntensityFromPGV(pgv float64) float64 { return seismo.Intensity(pgv) }
