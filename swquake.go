// Package swquake is a reproduction, in pure Go, of the SC'17 Gordon Bell
// paper "18.9-Pflops Nonlinear Earthquake Simulation on Sunway TaihuLight:
// Enabling Depiction of 18-Hz and 8-Meter Scenarios" (Fu et al.).
//
// The package exposes the complete framework of the paper's Fig. 3:
//
//   - a 4th-order staggered-grid velocity–stress finite-difference solver
//     with Drucker–Prager plasticity (the nonlinear mode), Cerjan absorbing
//     boundaries and a free surface;
//   - a dynamic rupture source generator with slip-weakening friction;
//   - 3D velocity models (layered crust, sediment basins, gridded models
//     with trilinear interpolation) and a synthetic Tangshan scenario;
//   - the on-the-fly 16-bit compression scheme (three codecs) with its
//     coarse-run calibration pass;
//   - LZ4-compressed checkpoint/restart with group-I/O planning;
//   - a simulated-MPI parallel runner using the paper's 2D decomposition;
//   - a calibrated Sunway SW26010 machine model and performance model that
//     regenerate the paper's tables and figures.
//
// Quick start:
//
//	cfg := swquake.QuickstartConfig()
//	sim, err := swquake.New(cfg)
//	if err != nil { ... }
//	res, err := sim.Run()
//	fmt.Println(res.Recorder.Trace("station-0").PeakVelocity())
//
// The heavy lifting lives in the internal packages; this package re-exports
// the stable surface a downstream user needs.
package swquake

import (
	"swquake/internal/checkpoint"
	"swquake/internal/compress"
	"swquake/internal/core"
	"swquake/internal/fd"
	"swquake/internal/grid"
	"swquake/internal/model"
	"swquake/internal/rupture"
	"swquake/internal/seismo"
	"swquake/internal/source"
)

// Core solver types.
type (
	// Config describes one simulation (grid, physics, sources, outputs).
	Config = core.Config
	// Simulator advances a configured simulation.
	Simulator = core.Simulator
	// Result is what Run returns: seismograms, PGV, counters.
	Result = core.Result
	// PlasticityConfig sets the nonlinear (Drucker–Prager) response.
	PlasticityConfig = core.PlasticityConfig
	// CompressionConfig enables 16-bit compressed wavefield storage.
	CompressionConfig = core.CompressionConfig
	// AttenuationConfig enables anelastic attenuation (exponential
	// constant-Q or the SLS memory-variable formulation).
	AttenuationConfig = core.AttenuationConfig
	// Perf is the PERF-style flop/throughput accounting of a run.
	Perf = core.Perf
	// Dims is a 3D grid extent.
	Dims = grid.Dims
)

// Model types.
type (
	// Material is an isotropic elastic material (Vp, Vs, rho).
	Material = model.Material
	// Model samples material at physical coordinates.
	Model = model.Model
	// Layered is a 1D layered crustal model.
	Layered = model.Layered
	// Basin carves a low-velocity sediment basin into a background model.
	Basin = model.Basin
	// GridModel is a discretely sampled model with trilinear interpolation.
	GridModel = model.GridModel
)

// Source and recording types.
type (
	// PointSource is a moment-tensor point source.
	PointSource = source.PointSource
	// MomentTensor is a symmetric seismic moment tensor.
	MomentTensor = source.MomentTensor
	// STF is a source-time function (moment rate over time).
	STF = source.STF
	// Ricker is the Ricker wavelet STF.
	Ricker = source.Ricker
	// Station is a named receiver location.
	Station = seismo.Station
	// Trace is a recorded three-component seismogram.
	Trace = seismo.Trace
	// PGVField accumulates peak ground velocity over the surface.
	PGVField = seismo.PGVField
)

// Rupture types.
type (
	// RuptureConfig describes a dynamic-rupture fault.
	RuptureConfig = rupture.Config
	// RuptureResult is a computed rupture history.
	RuptureResult = rupture.Result
)

// CheckpointController writes periodic LZ4-compressed restart dumps.
type CheckpointController = checkpoint.Controller

// Compression method selectors (paper Fig. 5d).
const (
	CompressionOff        = compress.Off
	CompressionHalf       = compress.Half
	CompressionAdaptive   = compress.Adaptive
	CompressionNormalized = compress.Normalized
)

// New builds a Simulator from a validated configuration.
func New(cfg Config) (*Simulator, error) { return core.New(cfg) }

// RunParallel runs the configuration over an mx x my grid of simulated MPI
// ranks (paper §6.3), producing results identical to a serial run. All
// serial features work here too: checkpoints are gathered to rank 0 and
// written as one global dump (resumable by serial or parallel runs via
// Config.RestartFrom), and Result.Perf / Result.Sunway aggregate the
// per-rank accounting.
func RunParallel(cfg Config, mx, my int) (*Result, error) {
	return core.RunParallel(cfg, mx, my)
}

// CalibrateCompression runs the coarse preprocessing pass of paper Fig. 5a
// and returns per-field codec statistics for CompressionConfig.Stats.
func CalibrateCompression(cfg Config, factor int) (map[string]compress.Stats, error) {
	return core.CalibrateCompression(cfg, factor)
}

// Medium is the sampled material grid used by the rupture generator and
// the kernels (density and Lamé moduli on the simulation mesh).
type Medium = fd.Medium

// NewMediumFromModel samples a velocity model onto a grid with spacing dx;
// (ox, oy) places the block in model coordinates.
func NewMediumFromModel(d Dims, dx float64, m Model, ox, oy float64) *Medium {
	return fd.NewMediumFromModel(d, dx, m, ox, oy)
}

// SimulateRupture runs the dynamic rupture generator (paper Fig. 3, the
// CG-FDM component) and returns the slip history, convertible to point
// sources via RuptureResult.Sources.
func SimulateRupture(cfg RuptureConfig, med *Medium, dx, dt float64, steps int) (*RuptureResult, error) {
	return rupture.Simulate(cfg, med, dx, dt, steps)
}

// TangshanRuptureConfig builds a scaled Tangshan-like non-planar fault for
// the given grid (paper §8.1).
func TangshanRuptureConfig(d Dims, dx float64) RuptureConfig {
	return rupture.TangshanConfig(d, dx)
}
