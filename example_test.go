package swquake_test

import (
	"fmt"
	"log"

	"swquake"
)

// ExampleNew runs the quickstart scenario end to end.
func ExampleNew() {
	cfg := swquake.QuickstartConfig()
	cfg.Steps = 20

	sim, err := swquake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("steps completed:", res.Steps)
	fmt.Println("stations recorded:", len(res.Recorder.Traces))
	// Output:
	// steps completed: 20
	// stations recorded: 1
}

// ExampleRunParallel shows that the simulated-MPI runner produces the same
// results as a serial run.
func ExampleRunParallel() {
	cfg := swquake.QuickstartConfig()
	cfg.Steps = 20

	sim, _ := swquake.New(cfg)
	serial, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	parallel, err := swquake.RunParallel(cfg, 2, 2)
	if err != nil {
		log.Fatal(err)
	}

	a := serial.Recorder.Trace("station-0")
	b := parallel.Recorder.Trace("station-0")
	identical := true
	for i := range a.U {
		if a.U[i] != b.U[i] {
			identical = false
		}
	}
	fmt.Println("serial == parallel:", identical)
	// Output:
	// serial == parallel: true
}

// ExampleCalibrateCompression demonstrates the coarse-run statistics pass
// that the 16-bit compressed storage mode needs (paper Fig. 5a).
func ExampleCalibrateCompression() {
	cfg := swquake.QuickstartConfig()
	cfg.Steps = 20

	stats, err := swquake.CalibrateCompression(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	cfg.Compression = swquake.CompressionConfig{
		Method: swquake.CompressionNormalized,
		Stats:  stats,
	}
	sim, err := swquake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("compressed run completed with", len(stats), "calibrated fields")
	// Output:
	// compressed run completed with 9 calibrated fields
}

// ExampleTangshanScenario builds the paper's scaled Tangshan configuration.
func ExampleTangshanScenario() {
	sc := swquake.TangshanScenario{
		Dims:      swquake.Dims{Nx: 40, Ny: 39, Nz: 16},
		Dx:        800,
		Steps:     50,
		Nonlinear: true,
	}
	cfg, err := sc.Config()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nonlinear:", cfg.Nonlinear)
	fmt.Println("stations:", len(cfg.Stations))
	fmt.Println("fault sub-sources:", len(cfg.Sources))
	// Output:
	// nonlinear: true
	// stations: 3
	// fault sub-sources: 96
}
