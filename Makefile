GO ?= go

.PHONY: all build check vet test race bench repro fuzz clean serve-smoke

all: build check test

build:
	$(GO) build ./...

# static analysis plus the race-sensitive engine packages (the simulated-MPI
# world, the step-pipeline drivers, and the job service worker pool) under
# the race detector
check: vet
	$(GO) test -race ./internal/core/... ./internal/mpi/... ./internal/service/...

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/mpi/ ./internal/checkpoint/ ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./...

# regenerate every table and figure of the paper
repro:
	$(GO) run ./cmd/bench -all

repro-full:
	$(GO) run ./cmd/bench -all -full

fuzz:
	$(GO) test -fuzz=FuzzDecompress -fuzztime 30s ./internal/lz4/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime 30s ./internal/lz4/
	$(GO) test -fuzz=FuzzLoad -fuzztime 30s ./internal/checkpoint/

# boot the quaked daemon on a random loopback port and drive one job
# through the real HTTP API: submit -> poll -> result -> cache hit -> metrics
serve-smoke:
	$(GO) run ./cmd/quaked -selftest

clean:
	rm -f *.pgm *.swvm *.swq test_output.txt bench_output.txt

# run the paper-size (160x160x512) core-group executor cross-check (~60 s)
test-paper:
	SWQUAKE_PAPER_BLOCK=1 $(GO) test -run TestExecutedMEMPaperBlock -v ./internal/experiments/
