GO ?= go

.PHONY: all build check vet test race bench bench-json bench-tiles profile repro fuzz clean serve-smoke ensemble-smoke crash-test chaos-test overload-test

all: build check test

build:
	$(GO) build ./...

# static analysis plus the race-sensitive engine packages (the simulated-MPI
# world, the step-pipeline drivers, the job service worker pool, the ensemble
# campaign scheduler, the durability layers, and the telemetry collectors)
# under the race detector
check: vet overload-test
	$(GO) test -race ./internal/core/... ./internal/mpi/... ./internal/service/... \
		./internal/ensemble/ ./internal/checkpoint/ ./internal/faultinject/ \
		./internal/telemetry/ ./internal/admission/

vet:
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./internal/mpi/ ./internal/checkpoint/ ./internal/core/

bench:
	$(GO) test -bench=. -benchmem ./...

# machine-readable serial solver benchmark: throughput, flop rate and the
# per-stage kernel breakdown, with build identity for cross-revision tracking
bench-json:
	$(GO) run ./cmd/bench -core-json BENCH_core.json

# serial vs tiled throughput on the same scenario: how much the intra-rank
# tile pool buys on this machine (bit-identical results either way)
bench-tiles:
	$(GO) run ./cmd/bench -compare-tiles -core-steps 100

# CPU-profile the serial benchmark and print the top-10 hot functions
profile:
	$(GO) test -run=^$$ -bench BenchmarkStepTimingOverhead/instrumented \
		-benchtime 100x -cpuprofile cpu.prof ./internal/core/
	$(GO) tool pprof -top cpu.prof | head -16

# regenerate every table and figure of the paper
repro:
	$(GO) run ./cmd/bench -all

repro-full:
	$(GO) run ./cmd/bench -all -full

fuzz:
	$(GO) test -fuzz=FuzzDecompress -fuzztime 30s ./internal/lz4/
	$(GO) test -fuzz=FuzzRoundTrip -fuzztime 30s ./internal/lz4/
	$(GO) test -fuzz=FuzzLoad -fuzztime 30s ./internal/checkpoint/

# the fault-tolerance suite under the race detector: failpoint-injected
# checkpoint corruption/write errors, worker panics, journal recovery, and
# the subprocess kill-and-restart drill in cmd/quaked
crash-test:
	$(GO) test -race ./internal/faultinject/ ./internal/atomicio/
	$(GO) test -race ./internal/checkpoint/ -run 'Atomic|Corrupt|Truncat|Valid|GC|Aux'
	$(GO) test -race ./internal/service/ -run 'Journal|Recover|Retry|Panic|Drain|Cancel'
	$(GO) test -race ./cmd/quaked/ -run 'KillRestart|RestartSkips|Faults'

# the self-healing engine drills under the race detector: injected halo
# corruption, stalled ranks and rank panics recovered in-run with results
# bit-identical to an undisturbed run, plus the abort/watchdog machinery in
# internal/mpi (already part of `make check`'s race list) and the metrics
# that surface the faults
chaos-test:
	$(GO) test -race -count=1 ./internal/mpi/
	$(GO) test -race -count=1 ./internal/core/ -run \
		'TestDiverged|TestConfigurableDivergence|TestHaloCRC|TestHaloCorruption|TestStalledRank|TestRankPanic|TestInRunRecovery|TestRecoveryWithout'
	$(GO) test -race -count=1 ./internal/service/ -run 'TestEngineFault|TestParallelDurable'
	$(GO) test -race -count=1 ./cmd/quakesim/ -run 'TestRunFaultDrill|TestRunRejectsBadFaultSpec'

# the overload drill under the race detector (DESIGN.md §3.8): a daemon at
# 5x its queue+worker capacity with a tight memory budget must shed with
# 429 + Retry-After, keep /healthz and cached results flowing, never exceed
# the budget (ledger high-water assertion), and finish every admitted job
# bit-identical to an unloaded run — plus the admission-layer drills in
# internal/service (budget serialization, breaker trip/probe, watchdog
# stall-retry, drain parking budget-blocked jobs) and the /readyz state walk
overload-test:
	$(GO) test -race ./cmd/quaked/ -run 'TestOverloadDrill|TestReadyzTransitions'
	$(GO) test -race ./internal/service/ -run \
		'TestMemBudget|TestNeverFits|TestSubmitRateLimited|TestBreakerTrip|TestProgressWatchdog|TestHealthDraining|TestDrainDeadlineParks|TestBatchYields'

# boot the quaked daemon on a random loopback port and drive one job
# through the real HTTP API: submit -> poll -> result -> cache hit -> metrics
serve-smoke:
	$(GO) run ./cmd/quaked -selftest

# boot the daemon and run a 3-member quickstart seed-sweep campaign through
# the real HTTP API: create -> poll -> aggregated hazard maps -> metrics
ensemble-smoke:
	$(GO) run ./cmd/quaked -selftest-ensemble

clean:
	rm -f *.pgm *.swvm *.swq test_output.txt bench_output.txt \
		BENCH_core.json cpu.prof core.test

# run the paper-size (160x160x512) core-group executor cross-check (~60 s)
test-paper:
	SWQUAKE_PAPER_BLOCK=1 $(GO) test -run TestExecutedMEMPaperBlock -v ./internal/experiments/
