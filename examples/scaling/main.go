// Scaling: project the solver onto the full Sunway TaihuLight with the
// calibrated performance model — the weak scaling of paper Fig. 8 (8,000 to
// 160,000 MPI processes, with and without nonlinearity and compression) and
// a demonstration that the simulated-MPI runner reproduces the serial
// solver exactly while distributing the work.
package main

import (
	"fmt"
	"log"
	"time"

	"swquake"
	"swquake/internal/experiments"
)

func main() {
	// 1. real distributed execution on this machine (simulated MPI)
	cfg := swquake.QuickstartConfig()
	cfg.Steps = 60

	start := time.Now()
	sim, err := swquake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	serial, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	serialT := time.Since(start)

	start = time.Now()
	par, err := swquake.RunParallel(cfg, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	parT := time.Since(start)

	a := serial.Recorder.Trace("station-0")
	b := par.Recorder.Trace("station-0")
	identical := true
	for i := range a.U {
		if a.U[i] != b.U[i] {
			identical = false
			break
		}
	}
	fmt.Printf("serial %.0f ms vs 2x2 simulated-MPI %.0f ms; traces identical: %v\n",
		serialT.Seconds()*1000, parT.Seconds()*1000, identical)

	// 2. full-machine projection (paper Fig. 8)
	fmt.Println("\nprojected weak scaling on TaihuLight (paper Fig. 8):")
	experiments.Fig8(logWriter{})
}

type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
