// Restart: the checkpoint/restart workflow of the paper's framework
// (Fig. 3's "Restart Controller" with LZ4 compression, §6.2). A run writes
// periodic compressed checkpoints (asynchronously, overlapping the
// computation the way the paper's forwarding pipeline does), is then
// "killed", and a fresh simulator resumes from the latest dump — the
// resumed run finishes bit-identically to an uninterrupted one.
package main

import (
	"fmt"
	"log"
	"os"

	"swquake"
	"swquake/internal/checkpoint"
	"swquake/internal/core"
)

func main() {
	dir, err := os.MkdirTemp("", "swquake-restart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := swquake.QuickstartConfig()
	cfg.Steps = 80

	// reference: uninterrupted run
	ref, err := swquake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := ref.Run()
	if err != nil {
		log.Fatal(err)
	}

	// first leg: run half way with async checkpoints every 20 steps
	firstLeg := cfg
	firstLeg.Steps = 40
	async := &checkpoint.AsyncController{
		Controller: checkpoint.Controller{Dir: dir, Interval: 20, Keep: 2},
	}
	sim1, err := core.New(firstLeg)
	if err != nil {
		log.Fatal(err)
	}
	for n := 0; n < firstLeg.Steps; n++ {
		sim1.Step()
		if _, err := async.MaybeSave(sim1.StepCount(), sim1.Time(), sim1.WF); err != nil {
			log.Fatal(err)
		}
	}
	infos, err := async.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, info := range infos {
		fmt.Printf("checkpoint %s: %.1f KB raw -> %.1f KB (LZ4 %.1fx)\n",
			info.Path, float64(info.RawBytes)/1024, float64(info.CompressedBytes)/1024,
			info.CompressionRatio)
	}
	fmt.Println("simulated crash after step 40; restarting from the latest checkpoint...")

	// second leg: restore and finish
	sim2, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim2.Cfg.Dt = ref.Dt()
	if err := sim2.Restore(async.Latest()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored at step %d (t = %.3f s)\n", sim2.StepCount(), sim2.Time())
	for sim2.StepCount() < cfg.Steps {
		sim2.Step()
	}

	// verify: final wavefields agree exactly
	identical := true
	for i, f := range refRes.Sim.WF.AllFields() {
		if !f.InteriorEqual(sim2.WF.AllFields()[i], 0) {
			identical = false
			_ = i
			break
		}
	}
	fmt.Printf("resumed run matches the uninterrupted run bit-exactly: %v\n", identical)
}
