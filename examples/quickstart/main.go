// Quickstart: the smallest complete use of the swquake public API — run an
// explosion source in a homogeneous half-space, print the station
// seismogram summary and the peak ground velocity.
package main

import (
	"fmt"
	"log"

	"swquake"
)

func main() {
	cfg := swquake.QuickstartConfig()

	sim, err := swquake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid %v, dx = %.0f m, dt = %.4f s, %d steps\n",
		cfg.Dims, cfg.Dx, sim.Dt(), cfg.Steps)

	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	tr := res.Recorder.Trace("station-0")
	fmt.Printf("station-0: %d samples, peak horizontal velocity %.3g m/s\n",
		len(tr.U), tr.PeakVelocity())
	fmt.Printf("surface peak ground velocity: %.3g m/s\n", res.PGV.Max())

	// print a tiny sparkline of the vertical component
	fmt.Print("w(t): ")
	shades := " .:-=+*#%@"
	var wmax float32
	for _, v := range tr.W {
		if v < 0 {
			v = -v
		}
		if v > wmax {
			wmax = v
		}
	}
	for i := 0; i < len(tr.W); i += 2 {
		v := tr.W[i]
		if v < 0 {
			v = -v
		}
		idx := 0
		if wmax > 0 {
			idx = int(v / wmax * float32(len(shades)-1))
		}
		fmt.Printf("%c", shades[idx])
	}
	fmt.Println()
}
