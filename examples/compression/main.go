// Compression: the paper's on-the-fly compression workflow (§6.5) through
// the public API — calibrate per-array statistics on a coarse run
// (Fig. 5a), run the same scenario with 16-bit compressed wavefield storage
// (Fig. 5b-c), and validate the result against the uncompressed reference
// (Fig. 6), reporting the memory saved.
package main

import (
	"fmt"
	"log"

	"swquake"
)

func main() {
	sc := swquake.TangshanScenario{
		Dims: swquake.Dims{Nx: 48, Ny: 46, Nz: 20}, Dx: 650, Steps: 150,
	}
	cfg, err := sc.Config()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("reference run (float32 storage)...")
	ref, err := swquake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	refRes, err := ref.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("calibrating codecs on a 2x-coarse run (paper Fig. 5a)...")
	stats, err := swquake.CalibrateCompression(cfg, 2)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"u", "xy"} {
		s := stats[name]
		fmt.Printf("  field %-3s range [%.3g, %.3g]\n", name, s.Min, s.Max)
	}

	fmt.Println("compressed run (16-bit storage, method 3: range-normalized)...")
	ccfg := cfg
	ccfg.Compression = swquake.CompressionConfig{
		Method: swquake.CompressionNormalized,
		Stats:  stats,
	}
	csim, err := swquake.New(ccfg)
	if err != nil {
		log.Fatal(err)
	}
	csim.Cfg.Dt = ref.Dt() // align sampling with the reference
	compRes, err := csim.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %14s %14s %12s\n", "station", "peak ref", "peak compr", "RMS misfit")
	for _, name := range []string{"Ninghe", "Cangzhou"} {
		a := refRes.Recorder.Trace(name)
		b := compRes.Recorder.Trace(name)
		mis, err := a.RMSMisfit(b)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.5g %14.5g %11.1f%%\n",
			name, a.PeakVelocity(), b.PeakVelocity(), 100*mis)
	}
	fmt.Println("(paper Fig. 6: onsets overlap; coda degrades slightly, more at the distant station)")

	raw := ref.WF.Bytes()
	fmt.Printf("wavefield storage: %.1f MB float32 -> %.1f MB compressed (2.0x, doubling the max problem size)\n",
		float64(raw)/(1<<20), float64(raw)/2/(1<<20))
}
