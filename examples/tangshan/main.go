// Tangshan: the paper's complete earthquake-simulation cycle at laptop
// scale — dynamic rupture source generation on a non-planar fault
// (CG-FDM-style), conversion of the slip history to moment-rate point
// sources, nonlinear strong-ground-motion simulation over the scaled
// Tangshan basin model, and the resulting seismic hazard summary (§8).
package main

import (
	"fmt"
	"log"

	"swquake"
)

func main() {
	// --- stage 1: dynamic rupture on the non-planar fault ---
	rupDims := swquake.Dims{Nx: 64, Ny: 28, Nz: 28}
	rupDx := 100.0
	crust := swquake.Material{Vp: 5000, Vs: 2887, Rho: 2700}
	med := swquake.NewMediumFromModel(rupDims, rupDx, uniform{crust}, 0, 0)

	rcfg := swquake.TangshanRuptureConfig(rupDims, rupDx)
	dt := 0.8 * 0.49 * rupDx / crust.Vp
	fmt.Println("stage 1: dynamic rupture source generation")
	rres, err := swquake.SimulateRupture(rcfg, med, rupDx, dt, 260)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  ruptured %.0f%% of the fault, max slip %.2f m, M0 %.3g N*m\n",
		100*rres.RupturedFraction(), rres.MaxFinalSlip(), rres.SeismicMoment(med))

	fmt.Printf("  %d moment-rate point sources emitted\n", len(rres.Sources(med, 2)))

	// --- stage 2: nonlinear ground motion over the basin model ---
	fmt.Println("stage 2: nonlinear strong ground motion")
	sc := swquake.TangshanScenario{
		Dims: swquake.Dims{Nx: 64, Ny: 62, Nz: 24}, Dx: 500, Steps: 240, Nonlinear: true,
	}
	cfg, err := sc.Config()
	if err != nil {
		log.Fatal(err)
	}
	// swap in the dynamic sources, remapped onto the ground-motion grid
	cfg.Sources = rres.SourcesOnGrid(med, 2, cfg.Dims, cfg.Dx)

	sim, err := swquake.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	// --- stage 3: hazard summary ---
	fmt.Println("stage 3: hazard summary")
	fmt.Printf("  %-10s %12s %10s\n", "station", "PGV (m/s)", "intensity")
	for _, name := range []string{"Ninghe", "Cangzhou", "Beijing"} {
		pgv := res.Recorder.Trace(name).PeakVelocity()
		fmt.Printf("  %-10s %12.4g %10.1f\n", name, pgv, swquake.IntensityFromPGV(pgv))
	}
	fmt.Printf("  surface max PGV %.4g m/s (intensity %.1f)\n",
		res.PGV.Max(), swquake.IntensityFromPGV(res.PGV.Max()))
	if res.YieldedPointSteps > 0 {
		fmt.Printf("  nonlinear response engaged at %d point-steps\n", res.YieldedPointSteps)
	}
}

type uniform struct{ m swquake.Material }

func (u uniform) Sample(_, _, _ float64) swquake.Material { return u.m }
