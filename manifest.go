package swquake

import (
	"swquake/internal/manifest"
)

// RunManifest is a machine-readable summary of a completed simulation —
// the record a batch system archives next to the outputs, and the result
// payload the job service (package internal/service, daemon cmd/quaked)
// returns over HTTP. The implementation lives in internal/manifest so the
// serving layer shares it.
type RunManifest = manifest.RunManifest

// StationSummary is one station's headline numbers.
type StationSummary = manifest.StationSummary

// NewRunManifest summarizes a run result against its configuration.
func NewRunManifest(cfg Config, res *Result) RunManifest {
	return manifest.New(cfg, res)
}

// LoadRunManifest reads a manifest back.
func LoadRunManifest(path string) (RunManifest, error) {
	return manifest.Load(path)
}
