package swquake

import (
	"swquake/internal/ensemble"
)

// CampaignManager orchestrates ensemble campaigns over a JobService: a
// CampaignSpec expands deterministically into member jobs (heterogeneity
// seed sweeps crossed with parameter variations) whose surface PGV fields
// are folded online into hazard statistics — mean/std maps, exceedance
// probabilities, percentile maps — bit-identically regardless of member
// completion order. The implementation lives in internal/ensemble; the
// quaked daemon serves it as /v1/campaigns.
type CampaignManager = ensemble.Manager

// CampaignSpec declares a campaign: a base scenario plus sweep axes.
type CampaignSpec = ensemble.CampaignSpec

// CampaignSeedAxis sweeps stochastic velocity-heterogeneity realizations.
type CampaignSeedAxis = ensemble.SeedAxis

// CampaignOptions configures a CampaignManager (service, durable data
// directory, default member concurrency, logging, tracing).
type CampaignOptions = ensemble.Options

// CampaignStatus is a campaign's externally visible state and progress.
type CampaignStatus = ensemble.Status

// CampaignAggregate is the online statistical hazard product over the
// members folded so far.
type CampaignAggregate = ensemble.Aggregate

// Sentinel errors a CampaignManager returns.
var (
	ErrUnknownCampaign = ensemble.ErrUnknownCampaign
	ErrCampaignsClosed = ensemble.ErrClosed
)

// OpenCampaignManager starts a campaign manager over a job service,
// recovering unfinished durable campaigns when Options.DataDir is set.
func OpenCampaignManager(opts CampaignOptions) (*CampaignManager, error) {
	return ensemble.Open(opts)
}
